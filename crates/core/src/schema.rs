//! Schemas: the explicit attributes of a relation.
//!
//! A schema describes only the *explicit* attributes — the ones the user
//! declared.  The paper is explicit that the implicit temporal columns
//! "do not appear in the schema for the relation, but may rather be
//! considered part of the overheads associated with each tuple"; ChronosDB
//! follows that: valid and transaction timestamps are carried beside the
//! tuple by the relation classes, never inside the schema.  User-defined
//! time, by contrast, *is* in the schema, as a plain [`AttrType::Date`]
//! attribute (paper §4.5).

use std::fmt;
use std::sync::Arc;

use crate::error::{CoreError, CoreResult};
use crate::tuple::Tuple;
use crate::value::AttrType;

/// A named, typed attribute.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Attribute {
    name: Arc<str>,
    ty: AttrType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl AsRef<str>, ty: AttrType) -> Attribute {
        Attribute {
            name: Arc::from(name.as_ref()),
            ty,
        }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute type.
    pub fn attr_type(&self) -> AttrType {
        self.ty
    }
}

/// Whether a relation's valid time is an interval or a single event
/// instant.
///
/// Interval relations (Figures 6 and 8) timestamp tuples with a period
/// `[from, to)`; event relations (Figure 9's `promotion`) carry a single
/// valid instant — "since it is an event relation, only one valid time is
/// necessary".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TemporalSignature {
    /// Tuples model states holding over a period.
    #[default]
    Interval,
    /// Tuples model instantaneous events.
    Event,
}

impl fmt::Display for TemporalSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            TemporalSignature::Interval => "interval",
            TemporalSignature::Event => "event",
        })
    }
}

/// The four relation classes of the paper's Figure 10.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelationClass {
    /// Snapshot only; updates destroy the past (§4.1).
    Static,
    /// Transaction-time sequence of static states; append-only; supports
    /// `rollback` (§4.2).
    StaticRollback,
    /// Valid-time relation holding history "as it is best known";
    /// arbitrarily correctable (§4.3).
    Historical,
    /// Both axes: an append-only sequence of historical states (§4.4).
    Temporal,
}

impl RelationClass {
    /// The database class this relation class belongs to (identical
    /// lattice).
    pub fn database_class(self) -> crate::taxonomy::DatabaseClass {
        use crate::taxonomy::DatabaseClass as D;
        match self {
            RelationClass::Static => D::Static,
            RelationClass::StaticRollback => D::StaticRollback,
            RelationClass::Historical => D::Historical,
            RelationClass::Temporal => D::Temporal,
        }
    }
}

impl fmt::Display for RelationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            RelationClass::Static => "static",
            RelationClass::StaticRollback => "static rollback",
            RelationClass::Historical => "historical",
            RelationClass::Temporal => "temporal",
        })
    }
}

/// An ordered list of distinct named attributes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Schema {
    attrs: Arc<[Attribute]>,
}

impl Schema {
    /// Builds a schema, rejecting empty attribute lists and duplicate
    /// names.
    pub fn new(attrs: Vec<Attribute>) -> CoreResult<Schema> {
        if attrs.is_empty() {
            return Err(CoreError::InvalidSchema("no attributes".into()));
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name() == a.name()) {
                return Err(CoreError::InvalidSchema(format!(
                    "duplicate attribute {:?}",
                    a.name()
                )));
            }
        }
        Ok(Schema {
            attrs: attrs.into(),
        })
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Looks up an attribute index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name() == name)
    }

    /// The attribute at `idx`.
    pub fn attribute(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Checks a tuple against this schema (arity and types).
    pub fn check(&self, tuple: &Tuple) -> CoreResult<()> {
        if tuple.arity() != self.arity() {
            return Err(CoreError::SchemaMismatch {
                expected: format!("{} attributes", self.arity()),
                found: format!("{} values", tuple.arity()),
            });
        }
        for (i, a) in self.attrs.iter().enumerate() {
            let got = tuple.get(i).attr_type();
            if got != a.attr_type() {
                return Err(CoreError::SchemaMismatch {
                    expected: format!("{}: {}", a.name(), a.attr_type()),
                    found: format!("{}: {}", a.name(), got),
                });
            }
        }
        Ok(())
    }

    /// Derives a projection schema from attribute indices.
    pub fn project(&self, indices: &[usize]) -> CoreResult<Schema> {
        let mut attrs = Vec::with_capacity(indices.len());
        for &i in indices {
            let a = self.attrs.get(i).ok_or_else(|| {
                CoreError::InvalidSchema(format!("projection index {i} out of range"))
            })?;
            attrs.push(a.clone());
        }
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name(), a.attr_type())?;
        }
        write!(f, ")")
    }
}

/// Convenience constructor for the paper's `faculty (name, rank)` schema.
pub fn faculty_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("name", AttrType::Str),
        Attribute::new("rank", AttrType::Str),
    ])
    .expect("static schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple;
    use crate::value::Value;

    #[test]
    fn rejects_bad_schemas() {
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![
            Attribute::new("a", AttrType::Int),
            Attribute::new("a", AttrType::Str),
        ])
        .is_err());
    }

    #[test]
    fn checks_tuples() {
        let s = faculty_schema();
        assert!(s.check(&tuple(["Merrie", "full"])).is_ok());
        assert!(s
            .check(&Tuple::new(vec![Value::Int(1), Value::str("full")]))
            .is_err());
        assert!(s.check(&Tuple::new(vec![Value::str("Merrie")])).is_err());
    }

    #[test]
    fn lookup_and_projection() {
        let s = faculty_schema();
        assert_eq!(s.index_of("rank"), Some(1));
        assert_eq!(s.index_of("salary"), None);
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.attribute(0).name(), "rank");
        assert!(s.project(&[7]).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(faculty_schema().to_string(), "(name: str, rank: str)");
        assert_eq!(RelationClass::StaticRollback.to_string(), "static rollback");
        assert_eq!(TemporalSignature::Event.to_string(), "event");
    }
}
