//! Time points: chronons extended with the `±∞` sentinels.
//!
//! The paper's tuple-timestamped figures (Figures 4, 6, 8 and 9) use `∞`
//! as the *(end)* of transaction time ("still current") and the *(to)* of
//! valid time ("valid until further notice").  `TimePoint` is the chronon
//! axis compactified with `-∞` and `+∞` so that every period endpoint,
//! including those, is a first-class ordered value.

use std::cmp::Ordering;
use std::fmt;

use crate::chronon::Chronon;

/// A point on the compactified time axis: `-∞`, a finite [`Chronon`], or `+∞`.
///
/// The ordering is the obvious total order with `-∞` least and `+∞`
/// greatest; between finite points it agrees with [`Chronon`]'s order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimePoint {
    /// Before every chronon ("beginning of time").
    MinusInfinity,
    /// A finite instant.
    Finite(Chronon),
    /// After every chronon; printed as `∞` exactly as in the paper.
    PlusInfinity,
}

impl TimePoint {
    /// `-∞`.
    pub const MINUS_INFINITY: TimePoint = TimePoint::MinusInfinity;
    /// `+∞`.
    pub const INFINITY: TimePoint = TimePoint::PlusInfinity;

    /// Wraps a finite chronon.
    #[inline]
    pub const fn at(c: Chronon) -> Self {
        TimePoint::Finite(c)
    }

    /// Returns the finite chronon, if any.
    #[inline]
    pub const fn finite(self) -> Option<Chronon> {
        match self {
            TimePoint::Finite(c) => Some(c),
            _ => None,
        }
    }

    /// True iff this point is a finite chronon.
    #[inline]
    pub const fn is_finite(self) -> bool {
        matches!(self, TimePoint::Finite(_))
    }

    /// True iff this point is `+∞`.
    #[inline]
    pub const fn is_plus_infinity(self) -> bool {
        matches!(self, TimePoint::PlusInfinity)
    }

    /// True iff this point is `-∞`.
    #[inline]
    pub const fn is_minus_infinity(self) -> bool {
        matches!(self, TimePoint::MinusInfinity)
    }

    /// Successor on the compactified axis; infinities are fixed points.
    #[inline]
    #[must_use]
    pub fn succ(self) -> Self {
        match self {
            TimePoint::Finite(c) => TimePoint::Finite(c.succ()),
            other => other,
        }
    }

    /// Predecessor on the compactified axis; infinities are fixed points.
    #[inline]
    #[must_use]
    pub fn pred(self) -> Self {
        match self {
            TimePoint::Finite(c) => TimePoint::Finite(c.pred()),
            other => other,
        }
    }

    /// The earlier of two points.
    #[inline]
    #[must_use]
    pub fn min_of(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two points.
    #[inline]
    #[must_use]
    pub fn max_of(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Encodes to an `i128` preserving order (used by storage codecs and
    /// index keys: `-∞ < all chronons < +∞`).
    #[inline]
    pub const fn order_key(self) -> i128 {
        match self {
            TimePoint::MinusInfinity => i128::MIN,
            TimePoint::Finite(c) => c.ticks() as i128,
            TimePoint::PlusInfinity => i128::MAX,
        }
    }
}

impl PartialOrd for TimePoint {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimePoint {
    fn cmp(&self, other: &Self) -> Ordering {
        use TimePoint::*;
        match (self, other) {
            (MinusInfinity, MinusInfinity) | (PlusInfinity, PlusInfinity) => Ordering::Equal,
            (MinusInfinity, _) | (_, PlusInfinity) => Ordering::Less,
            (_, MinusInfinity) | (PlusInfinity, _) => Ordering::Greater,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

impl From<Chronon> for TimePoint {
    #[inline]
    fn from(c: Chronon) -> Self {
        TimePoint::Finite(c)
    }
}

impl fmt::Debug for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimePoint::MinusInfinity => write!(f, "-∞"),
            TimePoint::Finite(c) => write!(f, "{c:?}"),
            TimePoint::PlusInfinity => write!(f, "∞"),
        }
    }
}

impl fmt::Display for TimePoint {
    /// Prints finite points through the calendar and infinities as the
    /// paper does (`∞`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimePoint::MinusInfinity => f.pad("-∞"),
            TimePoint::Finite(c) => fmt::Display::fmt(c, f),
            TimePoint::PlusInfinity => f.pad("∞"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        let pts = [
            TimePoint::MINUS_INFINITY,
            TimePoint::at(Chronon::new(-5)),
            TimePoint::at(Chronon::new(0)),
            TimePoint::at(Chronon::new(7)),
            TimePoint::INFINITY,
        ];
        for w in pts.windows(2) {
            assert!(w[0] < w[1], "{:?} should be < {:?}", w[0], w[1]);
        }
        assert_eq!(
            TimePoint::MINUS_INFINITY.cmp(&TimePoint::MINUS_INFINITY),
            Ordering::Equal
        );
        assert_eq!(
            TimePoint::INFINITY.cmp(&TimePoint::INFINITY),
            Ordering::Equal
        );
    }

    #[test]
    fn succ_pred_fix_infinities() {
        assert_eq!(TimePoint::INFINITY.succ(), TimePoint::INFINITY);
        assert_eq!(TimePoint::MINUS_INFINITY.pred(), TimePoint::MINUS_INFINITY);
        assert_eq!(
            TimePoint::at(Chronon::new(1)).succ(),
            TimePoint::at(Chronon::new(2))
        );
    }

    #[test]
    fn order_key_preserves_order() {
        let a = TimePoint::MINUS_INFINITY;
        let b = TimePoint::at(Chronon::MIN);
        let c = TimePoint::at(Chronon::MAX);
        let d = TimePoint::INFINITY;
        assert!(a.order_key() < b.order_key());
        assert!(b.order_key() < c.order_key());
        assert!(c.order_key() < d.order_key());
    }

    #[test]
    fn display_uses_infinity_glyph() {
        assert_eq!(TimePoint::INFINITY.to_string(), "∞");
        assert_eq!(TimePoint::MINUS_INFINITY.to_string(), "-∞");
    }
}
