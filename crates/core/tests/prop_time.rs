//! Property tests for the time domain: period algebra laws, Allen
//! relation coherence, and calendar round-trips.

use chronos_core::calendar::{date, Date};
use chronos_core::chronon::Chronon;
use chronos_core::period::{AllenRelation, Period};
use chronos_core::timepoint::TimePoint;
use proptest::prelude::*;

fn arb_timepoint() -> impl Strategy<Value = TimePoint> {
    prop_oneof![
        1 => Just(TimePoint::MINUS_INFINITY),
        1 => Just(TimePoint::INFINITY),
        8 => (-500i64..500).prop_map(|t| TimePoint::at(Chronon::new(t))),
    ]
}

prop_compose! {
    fn arb_period()(a in arb_timepoint(), b in arb_timepoint()) -> Period {
        Period::clamped(a.min_of(b), a.max_of(b))
    }
}

fn sample_points(p: Period, q: Period) -> Vec<Chronon> {
    let mut pts = Vec::new();
    for tp in [p.start(), p.end(), q.start(), q.end()] {
        if let Some(c) = tp.finite() {
            for d in [-1, 0, 1] {
                pts.push(c + d);
            }
        }
    }
    pts.push(Chronon::new(-501));
    pts.push(Chronon::new(501));
    pts
}

proptest! {
    #[test]
    fn intersection_is_pointwise_and(p in arb_period(), q in arb_period()) {
        let i = p.intersect(q);
        for c in sample_points(p, q) {
            prop_assert_eq!(i.contains(c), p.contains(c) && q.contains(c), "at {:?}", c);
        }
    }

    #[test]
    fn intersection_commutes_and_is_idempotent(p in arb_period(), q in arb_period()) {
        let a = p.intersect(q);
        let b = q.intersect(p);
        // Both empty, or equal.
        prop_assert!(a == b || (a.is_empty() && b.is_empty()));
        prop_assert_eq!(p.intersect(p).is_empty(), p.is_empty());
        if !p.is_empty() {
            prop_assert_eq!(p.intersect(p), p);
        }
    }

    #[test]
    fn union_is_pointwise_or_when_defined(p in arb_period(), q in arb_period()) {
        if let Some(u) = p.union(q) {
            for c in sample_points(p, q) {
                prop_assert_eq!(u.contains(c), p.contains(c) || q.contains(c), "at {:?}", c);
            }
        }
    }

    #[test]
    fn difference_is_pointwise_andnot(p in arb_period(), q in arb_period()) {
        let (l, r) = p.difference(q);
        for c in sample_points(p, q) {
            let in_diff = l.is_some_and(|x| x.contains(c)) || r.is_some_and(|x| x.contains(c));
            prop_assert_eq!(in_diff, p.contains(c) && !q.contains(c), "at {:?}", c);
        }
    }

    #[test]
    fn extend_covers_both(p in arb_period(), q in arb_period()) {
        let e = p.extend(q);
        prop_assert!(e.encloses(p));
        prop_assert!(e.encloses(q));
        // Minimality: extend is no larger than necessary at the ends.
        if !p.is_empty() && !q.is_empty() {
            prop_assert_eq!(e.start(), p.start().min_of(q.start()));
            prop_assert_eq!(e.end(), p.end().max_of(q.end()));
        }
    }

    #[test]
    fn allen_partitions_pairs(p in arb_period(), q in arb_period()) {
        match (p.is_empty(), q.is_empty()) {
            (false, false) => {
                let r = p.allen(q).expect("non-empty pairs are classified");
                prop_assert_eq!(q.allen(p), Some(r.inverse()));
                prop_assert_eq!(r.is_overlapping(), p.overlaps(q));
                // precede agrees with Before/Meets.
                let precedes = matches!(r, AllenRelation::Before | AllenRelation::Meets);
                prop_assert_eq!(p.precedes(q), precedes);
            }
            _ => prop_assert_eq!(p.allen(q), None),
        }
    }

    #[test]
    fn overlap_symmetric(p in arb_period(), q in arb_period()) {
        prop_assert_eq!(p.overlaps(q), q.overlaps(p));
    }

    #[test]
    fn encloses_transitive(p in arb_period(), q in arb_period(), r in arb_period()) {
        if p.encloses(q) && q.encloses(r) {
            prop_assert!(p.encloses(r));
        }
    }

    #[test]
    fn calendar_round_trip(t in -200_000i64..200_000) {
        let c = Chronon::new(t);
        let d = Date::from_chronon(c);
        prop_assert_eq!(d.to_chronon(), c);
        // And through the textual form.
        let again = date(&d.to_string()).unwrap();
        prop_assert_eq!(again, c);
    }

    #[test]
    fn calendar_is_monotone(t in -200_000i64..200_000) {
        let d0 = Date::from_chronon(Chronon::new(t));
        let d1 = Date::from_chronon(Chronon::new(t + 1));
        prop_assert!(d0 < d1);
    }

    #[test]
    fn timepoint_order_key_monotone(a in arb_timepoint(), b in arb_timepoint()) {
        prop_assert_eq!(a.cmp(&b), a.order_key().cmp(&b.order_key()));
    }
}
