//! Property tests for the relation classes: for every generated
//! transaction history, the conceptual snapshot ("cube") stores and the
//! practical tuple-timestamped stores are observationally equivalent —
//! the executable statement of the paper's Figures 3↔4 and 7↔8
//! correspondences.

use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::prelude::*;
use chronos_core::relation::StaticOp;
use chronos_core::schema::faculty_schema;
use proptest::prelude::*;

const NAMES: [&str; 5] = ["Merrie", "Tom", "Mike", "Ilsoo", "Rick"];
const RANKS: [&str; 4] = ["assistant", "associate", "full", "emeritus"];

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (0..NAMES.len(), 0..RANKS.len()).prop_map(|(n, r)| tuple([NAMES[n], RANKS[r]]))
}

fn arb_validity() -> impl Strategy<Value = Period> {
    (0i64..200, prop::option::of(1i64..120)).prop_map(|(from, len)| match len {
        Some(len) => Period::new(Chronon::new(from), Chronon::new(from + len)).unwrap(),
        None => Period::from_start(Chronon::new(from)),
    })
}

/// Abstract transaction scripts: op descriptions that are *made valid*
/// against the store's current state at application time, so every
/// generated history commits successfully.
#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(Tuple, Period),
    RemoveNth(usize),
    RestampNth(usize, Period),
}

fn arb_script() -> impl Strategy<Value = Vec<Vec<ScriptOp>>> {
    let op = prop_oneof![
        4 => (arb_tuple(), arb_validity()).prop_map(|(t, v)| ScriptOp::Insert(t, v)),
        2 => (0usize..16).prop_map(ScriptOp::RemoveNth),
        2 => ((0usize..16), arb_validity()).prop_map(|(n, v)| ScriptOp::RestampNth(n, v)),
    ];
    prop::collection::vec(prop::collection::vec(op, 1..5), 1..12)
}

/// Lowers a script transaction into concrete ops valid against `state`,
/// mutating `state` to follow.
fn lower(state: &mut HistoricalRelation, script: &[ScriptOp]) -> Vec<HistoricalOp> {
    let mut ops = Vec::new();
    for s in script {
        match s {
            ScriptOp::Insert(t, v) => {
                let op = HistoricalOp::insert(t.clone(), *v);
                if state.apply(std::slice::from_ref(&op)).is_ok() {
                    ops.push(op);
                }
            }
            ScriptOp::RemoveNth(n) => {
                let rows = state.rows();
                if rows.is_empty() {
                    continue;
                }
                let row = &rows[n % rows.len()];
                let op = HistoricalOp::remove(RowSelector::exact(row.tuple.clone(), row.validity));
                state
                    .apply(std::slice::from_ref(&op))
                    .expect("exact removal of an existing row succeeds");
                ops.push(op);
            }
            ScriptOp::RestampNth(n, v) => {
                let rows = state.rows();
                if rows.is_empty() {
                    continue;
                }
                let row = &rows[n % rows.len()];
                let op = HistoricalOp::set_validity(
                    RowSelector::exact(row.tuple.clone(), row.validity),
                    *v,
                );
                if state.apply(std::slice::from_ref(&op)).is_ok() {
                    ops.push(op);
                }
            }
        }
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn temporal_stores_equivalent(script in arb_script()) {
        let schema = faculty_schema();
        let mut cube = SnapshotTemporal::new(schema.clone(), TemporalSignature::Interval);
        let mut table = BitemporalTable::new(schema.clone(), TemporalSignature::Interval);
        let mut shadow = HistoricalRelation::new(schema, TemporalSignature::Interval);

        let mut tx_time = Chronon::new(1000);
        let mut commit_times = Vec::new();
        for tx in &script {
            let ops = lower(&mut shadow, tx);
            if ops.is_empty() {
                continue;
            }
            cube.commit(tx_time, &ops).expect("lowered ops are valid");
            table.commit(tx_time, &ops).expect("lowered ops are valid");
            commit_times.push(tx_time);
            tx_time = tx_time + 10;
        }

        // Current states agree with each other and with the shadow.
        prop_assert_eq!(cube.current(), table.current());
        prop_assert_eq!(table.current(), shadow.clone());

        // Rollback agrees at, around, and between every commit.
        for &ct in &commit_times {
            for probe in [ct - 1, ct, ct + 1, ct + 5] {
                prop_assert_eq!(cube.rollback(probe), table.rollback(probe), "at {:?}", probe);
            }
        }
        // And before history began.
        prop_assert!(table.rollback(Chronon::new(0)).is_empty());

        // Append-only: the timestamped store never stores fewer rows than
        // distinct versions, and the cube never fewer tuples than the table.
        prop_assert!(cube.stored_tuples() >= table.current().len());

        // Valid-time timeslices of the current state agree between the
        // two stores at assorted instants.
        for t in [0i64, 50, 100, 150, 199, 250, 320] {
            let t = Chronon::new(t);
            prop_assert_eq!(cube.current().valid_at(t), table.current().valid_at(t));
        }
    }

    #[test]
    fn rollback_stores_equivalent(
        txs in prop::collection::vec(prop::collection::vec(arb_tuple(), 1..4), 1..10)
    ) {
        let schema = faculty_schema();
        let mut cube = SnapshotRollback::new(schema.clone());
        let mut ts = TimestampedRollback::new(schema.clone());
        let mut shadow = StaticRelation::new(schema);

        let mut tx_time = Chronon::new(100);
        let mut commits = Vec::new();
        for tx in &txs {
            // Toggle semantics: present tuples are deleted, absent inserted
            // — always valid, and exercises insert/delete/reinsert chains.
            let mut ops = Vec::new();
            for t in tx {
                let op = if shadow.contains(t) {
                    StaticOp::Delete(t.clone())
                } else {
                    StaticOp::Insert(t.clone())
                };
                if shadow.apply(std::slice::from_ref(&op)).is_ok() {
                    ops.push(op);
                }
            }
            if ops.is_empty() {
                continue;
            }
            cube.commit(tx_time, &ops).expect("toggled ops are valid");
            ts.commit(tx_time, &ops).expect("toggled ops are valid");
            commits.push(tx_time);
            tx_time = tx_time + 7;
        }

        prop_assert_eq!(cube.current(), ts.current());
        prop_assert_eq!(&ts.current(), &shadow);
        for &ct in &commits {
            for probe in [ct - 1, ct, ct + 3] {
                prop_assert_eq!(cube.rollback(probe), ts.rollback(probe), "at {:?}", probe);
            }
        }
        prop_assert!(ts.rollback(Chronon::new(0)).is_empty());
        // The cube stores at least as many tuples as the timestamped form
        // whenever any state carries more than one tuple (duplication).
        prop_assert!(cube.stored_tuples() + commits.len() >= ts.stored_tuples());
    }

    #[test]
    fn rollback_past_is_immutable(
        txs in prop::collection::vec(prop::collection::vec(arb_tuple(), 1..4), 2..8),
        probe_off in 0i64..40,
    ) {
        let schema = faculty_schema();
        let mut ts = TimestampedRollback::new(schema.clone());
        let mut shadow = StaticRelation::new(schema);
        let mut tx_time = Chronon::new(100);
        let mut snapshots: Vec<(Chronon, StaticRelation)> = Vec::new();
        for tx in &txs {
            let mut ops = Vec::new();
            for t in tx {
                let op = if shadow.contains(t) {
                    StaticOp::Delete(t.clone())
                } else {
                    StaticOp::Insert(t.clone())
                };
                if shadow.apply(std::slice::from_ref(&op)).is_ok() {
                    ops.push(op);
                }
            }
            if ops.is_empty() { continue; }
            // Record what an earlier probe sees *before* this commit…
            let probe = Chronon::new(tx_time.ticks() - 1 - probe_off);
            snapshots.push((probe, ts.rollback(probe)));
            ts.commit(tx_time, &ops).unwrap();
            tx_time = tx_time + 7;
            // …and verify all earlier snapshots are unchanged after it.
            for (p, snap) in &snapshots {
                prop_assert_eq!(&ts.rollback(*p), snap, "past mutated at {:?}", p);
            }
        }
    }
}
