//! Integration-test host crate; see `/tests` at the repository root.
