//! Property tests for the storage layer: codec fuzz round-trips, B+ tree
//! vs `BTreeMap`, interval tree vs linear scan, WAL record round-trips,
//! the storage-backed table vs the reference bitemporal store, and the
//! frozen-segment format (delta codec and period coalescing round-trips,
//! frozen table vs pure-heap table).

use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::prelude::*;
use chronos_core::schema::faculty_schema;
use chronos_core::timepoint::TimePoint;
use chronos_storage::codec;
use chronos_storage::index::{BPlusTree, IntervalTree};
use chronos_storage::table::StoredBitemporalTable;
use chronos_storage::wal::{decode_record, encode_record, WalRecord};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z ]{0,12}".prop_map(Value::str),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        (-100_000i64..100_000).prop_map(|t| Value::Date(Chronon::new(t))),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), 0..5).prop_map(Tuple::new)
}

fn arb_validity() -> impl Strategy<Value = Validity> {
    prop_oneof![
        (-1000i64..1000, 1i64..500).prop_map(|(a, len)| Validity::Interval(
            Period::new(Chronon::new(a), Chronon::new(a + len)).unwrap()
        )),
        (-1000i64..1000).prop_map(|a| Validity::Interval(Period::from_start(Chronon::new(a)))),
        (-1000i64..1000).prop_map(|a| Validity::Event(Chronon::new(a))),
    ]
}

proptest! {
    #[test]
    fn value_codec_round_trips(v in arb_value()) {
        let mut buf = Vec::new();
        codec::put_value(&mut buf, &v);
        let mut r = codec::Reader::new(&buf);
        prop_assert_eq!(codec::get_value(&mut r).unwrap(), v);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn tuple_codec_round_trips(t in arb_tuple()) {
        let mut buf = Vec::new();
        codec::put_tuple(&mut buf, &t);
        let mut r = codec::Reader::new(&buf);
        prop_assert_eq!(codec::get_tuple(&mut r).unwrap(), t);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut r = codec::Reader::new(&bytes);
        let _ = codec::get_tuple(&mut r); // must not panic
        let mut r = codec::Reader::new(&bytes);
        let _ = codec::get_validity(&mut r);
        let _ = decode_record(&bytes);
    }

    #[test]
    fn wal_record_round_trips(
        rel_id in any::<u32>(),
        tx in -10_000i64..10_000,
        tuples in prop::collection::vec((arb_tuple(), arb_validity()), 0..6),
    ) {
        let ops: Vec<HistoricalOp> = tuples
            .into_iter()
            .map(|(t, v)| HistoricalOp::insert(t, v))
            .collect();
        let rec = WalRecord { rel_id, tx_time: Chronon::new(tx), ops };
        prop_assert_eq!(decode_record(&encode_record(&rec)).unwrap(), rec);
    }

    #[test]
    fn bptree_matches_btreemap(
        ops in prop::collection::vec((any::<u16>(), any::<u8>(), any::<bool>()), 1..400)
    ) {
        let mut tree = BPlusTree::new();
        let mut map = BTreeMap::new();
        for (k, v, insert) in ops {
            if insert {
                prop_assert_eq!(tree.insert(k, v), map.insert(k, v));
            } else {
                prop_assert_eq!(tree.remove(&k), map.remove(&k));
            }
        }
        prop_assert_eq!(tree.len(), map.len());
        let mut collected = Vec::new();
        tree.for_each(|k, v| collected.push((*k, *v)));
        let expected: Vec<(u16, u8)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn interval_tree_matches_scan(
        entries in prop::collection::vec((0i64..300, 1i64..60), 1..150),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
        probes in prop::collection::vec(0i64..360, 1..20),
    ) {
        let mut tree = IntervalTree::new();
        let mut shadow: Vec<(Period, usize)> = Vec::new();
        for (i, (a, len)) in entries.iter().enumerate() {
            let p = Period::new(Chronon::new(*a), Chronon::new(a + len)).unwrap();
            tree.insert(p, i);
            shadow.push((p, i));
        }
        for idx in removals {
            if shadow.is_empty() { break; }
            let (p, v) = shadow.swap_remove(idx.index(shadow.len()));
            prop_assert!(tree.remove(p, &v));
        }
        prop_assert_eq!(tree.len(), shadow.len());
        for probe in probes {
            let t = TimePoint::at(Chronon::new(probe));
            let mut got: Vec<usize> = tree.stab_values(t).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<usize> = shadow
                .iter()
                .filter(|(p, _)| p.contains_point(t))
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "probe {}", probe);
        }
    }
}

// ---------------------------------------------------------------------
// Differential: stored table vs reference bitemporal store
// ---------------------------------------------------------------------

const NAMES: [&str; 4] = ["Merrie", "Tom", "Mike", "Ilsoo"];
const RANKS: [&str; 3] = ["assistant", "associate", "full"];

#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(usize, usize, i64, Option<i64>),
    RemoveNth(usize),
    RestampNth(usize, i64, Option<i64>),
}

fn arb_script() -> impl Strategy<Value = Vec<Vec<ScriptOp>>> {
    let op = prop_oneof![
        4 => (0..NAMES.len(), 0..RANKS.len(), 0i64..300, prop::option::of(1i64..200))
            .prop_map(|(n, r, a, len)| ScriptOp::Insert(n, r, a, len)),
        2 => (0usize..32).prop_map(ScriptOp::RemoveNth),
        2 => ((0usize..32), 0i64..300, prop::option::of(1i64..200))
            .prop_map(|(i, a, len)| ScriptOp::RestampNth(i, a, len)),
    ];
    prop::collection::vec(prop::collection::vec(op, 1..4), 1..10)
}

fn validity(a: i64, len: Option<i64>) -> Validity {
    Validity::Interval(match len {
        Some(l) => Period::new(Chronon::new(a), Chronon::new(a + l)).unwrap(),
        None => Period::from_start(Chronon::new(a)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stored_table_equivalent_to_reference(script in arb_script()) {
        let schema = faculty_schema();
        let mut stored = StoredBitemporalTable::in_memory(schema.clone(), TemporalSignature::Interval);
        let mut reference = BitemporalTable::new(schema.clone(), TemporalSignature::Interval);
        let mut shadow = HistoricalRelation::new(schema, TemporalSignature::Interval);

        let mut tx_time = Chronon::new(1000);
        let mut commits = Vec::new();
        for tx in &script {
            let mut ops = Vec::new();
            for s in tx {
                match s {
                    ScriptOp::Insert(n, r, a, len) => {
                        let op = HistoricalOp::insert(tuple([NAMES[*n], RANKS[*r]]), validity(*a, *len));
                        if shadow.apply(std::slice::from_ref(&op)).is_ok() {
                            ops.push(op);
                        }
                    }
                    ScriptOp::RemoveNth(i) => {
                        let rows = shadow.rows();
                        if rows.is_empty() { continue; }
                        let row = &rows[i % rows.len()];
                        let op = HistoricalOp::remove(RowSelector::exact(row.tuple.clone(), row.validity));
                        shadow.apply(std::slice::from_ref(&op)).unwrap();
                        ops.push(op);
                    }
                    ScriptOp::RestampNth(i, a, len) => {
                        let rows = shadow.rows();
                        if rows.is_empty() { continue; }
                        let row = &rows[i % rows.len()];
                        let op = HistoricalOp::set_validity(
                            RowSelector::exact(row.tuple.clone(), row.validity),
                            validity(*a, *len),
                        );
                        if shadow.apply(std::slice::from_ref(&op)).is_ok() {
                            ops.push(op);
                        }
                    }
                }
            }
            if ops.is_empty() { continue; }
            stored.try_commit(tx_time, &ops).expect("valid ops");
            reference.commit(tx_time, &ops).expect("valid ops");
            commits.push(tx_time);
            tx_time = tx_time + 3;
        }

        prop_assert_eq!(stored.current(), reference.current());
        prop_assert_eq!(stored.stored_tuples(), reference.stored_tuples());
        for &ct in &commits {
            for probe in [ct - 1, ct, ct + 1] {
                prop_assert_eq!(stored.rollback(probe), reference.rollback(probe), "at {}", probe);
            }
        }
        // Indexed bitemporal point queries agree with brute force over
        // the reference rows.
        for (v, a) in [(50i64, 1001i64), (150, 1010), (290, 1030)] {
            let (v, a) = (Chronon::new(v), Chronon::new(a));
            let mut got: Vec<Tuple> = stored
                .valid_at_as_of(v, a)
                .unwrap()
                .into_iter()
                .map(|r| r.tuple)
                .collect();
            got.sort();
            let mut want: Vec<Tuple> = reference
                .rows()
                .iter()
                .filter(|r| r.tx.contains(a) && r.validity.valid_at(v))
                .map(|r| r.tuple.clone())
                .collect();
            want.sort();
            prop_assert_eq!(got, want);
        }
    }
}

// ---------------------------------------------------------------------
// Differential: frozen segments vs the pure heap
// ---------------------------------------------------------------------

use chronos_core::relation::temporal::BitemporalRow;
use chronos_storage::segment::{self, Segment};

/// Unique temp path per proptest case.
fn unique_seg_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "chronos-prop-{tag}-{}-{}.seg",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Arbitrary frozen version chains: per key, versions with strictly
/// advancing, closed transaction periods — `abut == true` makes the
/// next period start where the previous ended (the coalesce-encoded
/// fast path), `false` leaves a gap (the full-period fallback).
fn arb_frozen_chains() -> impl Strategy<Value = Vec<BitemporalRow>> {
    let version = (0..RANKS.len(), arb_validity(), 1i64..40, any::<bool>());
    prop::collection::vec((0..NAMES.len(), prop::collection::vec(version, 1..8)), 1..5).prop_map(
        |keys| {
            let mut rows = Vec::new();
            for (ki, (n, versions)) in keys.into_iter().enumerate() {
                // Distinct keys per chain: suffix the name with the index.
                let name = format!("{}{}", NAMES[n], ki);
                let mut start = 10;
                for (r, validity, len, abut) in versions {
                    let end = start + len;
                    rows.push(BitemporalRow {
                        tuple: tuple([name.as_str(), RANKS[r]]),
                        validity,
                        tx: Period::new(Chronon::new(start), Chronon::new(end)).unwrap(),
                    });
                    start = if abut { end } else { end + 3 };
                }
            }
            rows
        },
    )
}

fn row_key(r: &BitemporalRow) -> (String, TimePoint, TimePoint) {
    (format!("{:?}", r.tuple), r.tx.start(), r.tx.end())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode = id for the segment's delta codec and period
    /// coalescing, over arbitrary version chains.
    #[test]
    fn segment_codec_round_trips(rows in arb_frozen_chains()) {
        let path = unique_seg_path("codec");
        segment::write_segment(&path, 42, &rows).unwrap();
        let seg = Segment::open(&path).unwrap();
        prop_assert_eq!(seg.versions() as usize, rows.len());
        let mut got = seg.rows().unwrap();
        got.sort_by_key(row_key);
        let mut want = rows.clone();
        want.sort_by_key(row_key);
        prop_assert_eq!(got, want);
        // The image also passes the doctor's structural validation.
        let bytes = std::fs::read(&path).unwrap();
        prop_assert!(segment::check_bytes(&bytes).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A frozen table answers every query byte-identically to the
    /// pure-heap table driven by the same script.
    #[test]
    fn frozen_table_equivalent_to_heap_table(script in arb_script()) {
        let schema = faculty_schema();
        let mut heap_only =
            StoredBitemporalTable::in_memory(schema.clone(), TemporalSignature::Interval);
        let mut frozen = StoredBitemporalTable::in_memory(schema, TemporalSignature::Interval);

        let mut tx_time = Chronon::new(1000);
        let mut commits = Vec::new();
        for tx in &script {
            let mut ops = Vec::new();
            for s in tx {
                // Replay through the heap table's own validation: an op
                // the reference semantics accept is applied to both.
                match s {
                    ScriptOp::Insert(n, r, a, len) => {
                        ops.push(HistoricalOp::insert(
                            tuple([NAMES[*n], RANKS[*r]]),
                            validity(*a, *len),
                        ));
                    }
                    ScriptOp::RemoveNth(i) => {
                        let current = heap_only.current();
                        let rows = current.rows();
                        if rows.is_empty() { continue; }
                        let row = &rows[i % rows.len()];
                        ops.push(HistoricalOp::remove(
                            RowSelector::exact(row.tuple.clone(), row.validity),
                        ));
                    }
                    ScriptOp::RestampNth(i, a, len) => {
                        let current = heap_only.current();
                        let rows = current.rows();
                        if rows.is_empty() { continue; }
                        let row = &rows[i % rows.len()];
                        ops.push(HistoricalOp::set_validity(
                            RowSelector::exact(row.tuple.clone(), row.validity),
                            validity(*a, *len),
                        ));
                    }
                }
            }
            if ops.is_empty() { continue; }
            if heap_only.try_commit(tx_time, &ops).is_ok() {
                frozen.try_commit(tx_time, &ops).expect("tables in lockstep");
                commits.push(tx_time);
            }
            tx_time = tx_time + 3;
        }

        let path = unique_seg_path("diff");
        let report = frozen.freeze_into(&path).unwrap();
        prop_assert_eq!(
            report.as_ref().map(|r| r.versions as usize).unwrap_or(0),
            heap_only.frozen_version_count()
        );

        // Full scans are byte-identical as multisets.
        let mut a = heap_only.scan_rows().unwrap();
        let mut b = frozen.scan_rows().unwrap();
        a.sort_by_key(row_key);
        b.sort_by_key(row_key);
        prop_assert_eq!(a, b);

        // Rollbacks, as-of scans and point lookups agree at every
        // commit boundary.
        for &ct in &commits {
            for probe in [ct - 1, ct, ct + 1] {
                prop_assert_eq!(
                    heap_only.rollback(probe),
                    frozen.rollback(probe),
                    "rollback at {}", probe
                );
                prop_assert_eq!(
                    heap_only.try_rollback_indexed(probe).unwrap(),
                    frozen.try_rollback_indexed(probe).unwrap(),
                    "indexed rollback at {}", probe
                );
                let mut x = heap_only.rows_at(probe).unwrap();
                let mut y = frozen.rows_at(probe).unwrap();
                x.sort_by_key(row_key);
                y.sort_by_key(row_key);
                prop_assert_eq!(x, y, "rows_at {}", probe);
                for name in NAMES {
                    let k = Value::str(name);
                    let mut x = heap_only.lookup_key_as_of(&k, probe).unwrap();
                    let mut y = frozen.lookup_key_as_of(&k, probe).unwrap();
                    x.sort_by_key(row_key);
                    y.sort_by_key(row_key);
                    prop_assert_eq!(x, y, "lookup({}) at {}", name, probe);
                }
            }
        }
        if report.is_some() {
            std::fs::remove_file(&path).unwrap();
        }
    }
}
