//! Write-ahead log.
//!
//! ChronosDB logs *logically*: each committed transaction appends one
//! checksummed frame holding the transaction time, the relation id, and
//! the [`HistoricalOp`]s (or static ops encoded as historical ops on an
//! always-valid period).  Replaying the log through the normal commit
//! path deterministically reconstructs the table — which is exactly the
//! append-only transaction-time semantics of the paper: the log *is* the
//! temporal database.
//!
//! Frame format: `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//! Recovery reads frames until the end of the file; an incomplete or
//! checksum-failing final frame (a torn write from a crash) is tolerated
//! and truncated, while corruption *before* the tail is reported as an
//! error.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use chronos_core::chronon::Chronon;
use chronos_core::relation::{HistoricalOp, RowSelector};
use chronos_obs::Recorder;

use crate::codec::{crc32, get_tuple, get_validity, put_tuple, put_uvarint, put_validity, Reader};
use crate::error::{StorageError, StorageResult};

/// One committed transaction, as logged.
#[derive(Clone, PartialEq, Debug)]
pub struct WalRecord {
    /// The relation the transaction applies to.
    pub rel_id: u32,
    /// The transaction time assigned at commit.
    pub tx_time: Chronon,
    /// The operations, in order.
    pub ops: Vec<HistoricalOp>,
}

const OP_INSERT: u8 = 0;
const OP_REMOVE: u8 = 1;
const OP_SET_VALIDITY: u8 = 2;

fn put_selector(buf: &mut Vec<u8>, sel: &RowSelector) {
    put_tuple(buf, &sel.tuple);
    match sel.validity {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            put_validity(buf, v);
        }
    }
}

fn get_selector(r: &mut Reader<'_>) -> StorageResult<RowSelector> {
    let tuple = get_tuple(r)?;
    let validity = match r.get_u8()? {
        0 => None,
        1 => Some(get_validity(r)?),
        t => return Err(StorageError::Corrupt(format!("bad selector tag {t}"))),
    };
    Ok(RowSelector { tuple, validity })
}

/// Encodes a record into a payload (no framing).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&rec.rel_id.to_le_bytes());
    crate::codec::put_ivarint(&mut buf, rec.tx_time.ticks());
    put_uvarint(&mut buf, rec.ops.len() as u64);
    for op in &rec.ops {
        match op {
            HistoricalOp::Insert { tuple, validity } => {
                buf.push(OP_INSERT);
                put_tuple(&mut buf, tuple);
                put_validity(&mut buf, *validity);
            }
            HistoricalOp::Remove { selector } => {
                buf.push(OP_REMOVE);
                put_selector(&mut buf, selector);
            }
            HistoricalOp::SetValidity { selector, validity } => {
                buf.push(OP_SET_VALIDITY);
                put_selector(&mut buf, selector);
                put_validity(&mut buf, *validity);
            }
        }
    }
    buf
}

/// Decodes a payload into a record.
pub fn decode_record(payload: &[u8]) -> StorageResult<WalRecord> {
    let mut r = Reader::new(payload);
    let mut id = [0u8; 4];
    for slot in &mut id {
        *slot = r.get_u8()?;
    }
    let rel_id = u32::from_le_bytes(id);
    let tx_time = Chronon::new(r.get_ivarint()?);
    let n = r.get_uvarint()? as usize;
    if n > 1 << 24 {
        return Err(StorageError::Corrupt(format!("implausible op count {n}")));
    }
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let op = match r.get_u8()? {
            OP_INSERT => HistoricalOp::Insert {
                tuple: get_tuple(&mut r)?,
                validity: get_validity(&mut r)?,
            },
            OP_REMOVE => HistoricalOp::Remove {
                selector: get_selector(&mut r)?,
            },
            OP_SET_VALIDITY => {
                let selector = get_selector(&mut r)?;
                let validity = get_validity(&mut r)?;
                HistoricalOp::SetValidity { selector, validity }
            }
            t => return Err(StorageError::Corrupt(format!("unknown op tag {t}"))),
        };
        ops.push(op);
    }
    if !r.is_exhausted() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after record",
            r.remaining()
        )));
    }
    Ok(WalRecord {
        rel_id,
        tx_time,
        ops,
    })
}

/// The result of reading a log: the valid records, plus how many bytes of
/// torn tail (if any) were ignored.
#[derive(Debug)]
pub struct Recovered {
    /// Every intact record in append order.
    pub records: Vec<WalRecord>,
    /// Offset at which the valid prefix ends.
    pub valid_len: u64,
    /// Bytes of unusable tail beyond `valid_len`.
    pub torn_bytes: u64,
}

/// An append-only write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    recorder: Arc<Recorder>,
    /// Length of the known-good, fsynced prefix.  A failed append
    /// rolls the file back here so later appends never land *after*
    /// garbage (which recovery would then truncate away, silently
    /// losing them).
    synced_len: u64,
    /// End of the last intact frame, synced or not.  Frames between
    /// `synced_len` and here were staged by [`Wal::append_no_sync`] and
    /// await a [`Wal::group_sync`]; a failed staging rolls back to this
    /// boundary rather than `synced_len` so one bad append in a batch
    /// cannot erase its already-staged siblings.
    logical_len: u64,
    /// How many times this handle has truncated the log (rollback of a
    /// failed apply via [`Wal::truncate_to`], or a post-checkpoint
    /// [`Wal::reset`]).  Surfaced by `sys$wal`.
    truncations: u64,
    /// Bytes dropped by the most recent truncation, if any.
    last_truncation_bytes: u64,
}

impl Wal {
    /// Opens (creating if necessary) the log at `path`.
    pub fn open(path: &Path) -> StorageResult<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let synced_len = file.metadata()?.len();
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            recorder: Arc::new(Recorder::disabled()),
            synced_len,
            logical_len: synced_len,
            truncations: 0,
            last_truncation_bytes: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Routes append/fsync counts into `recorder`.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// Appends one record (framed and checksummed) and syncs to disk.
    ///
    /// On error the file is rolled back to its last fsynced prefix
    /// (best effort), so a failed append can never poison the tail and
    /// swallow a *later* successful append at recovery time.
    pub fn append(&mut self, rec: &WalRecord) -> StorageResult<()> {
        let result = self.append_inner(rec);
        if result.is_err() {
            // Best-effort self-heal; the original error is what the
            // caller needs to see either way.
            let _ = self.file.set_len(self.synced_len);
            let _ = self.file.sync_data();
            self.logical_len = self.synced_len;
        }
        result
    }

    fn append_inner(&mut self, rec: &WalRecord) -> StorageResult<()> {
        let recorder = Arc::clone(&self.recorder);
        let _span = recorder.span("wal/append");
        let frame_len = self.write_frame(rec)?;
        crate::fault::crash_point("wal.append.pre_sync")?;
        self.file.sync_data()?;
        // `synced_len` advances only once the whole append has
        // succeeded: an error unwinding from the post-sync site rolls
        // the (durable but *reported failed*) frame back, keeping the
        // log consistent with what the caller was told.
        crate::fault::crash_point("wal.append.post_sync")?;
        self.synced_len = self.logical_len;
        self.recorder.count(|m| &m.wal_fsyncs);
        self.recorder.emit_event(
            "wal_append",
            &[
                ("rel_id", u64::from(rec.rel_id).into()),
                ("ops", rec.ops.len().into()),
                ("frame_bytes", frame_len.into()),
                ("fsync", true.into()),
            ],
        );
        Ok(())
    }

    /// Frames, checksums, and writes one record without syncing,
    /// honoring the `wal.append.pre_frame`/`wal.append.frame` fault
    /// sites.  Advances `logical_len` past the new frame and returns
    /// the frame length.
    fn write_frame(&mut self, rec: &WalRecord) -> StorageResult<usize> {
        crate::fault::crash_point("wal.append.pre_frame")?;
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        match crate::fault::write_decision("wal.append.frame", frame.len())? {
            crate::fault::IoFault::Full => self.file.write_all(&frame)?,
            crate::fault::IoFault::Torn { keep, unwind } => {
                // Persist the tear before dying so the torn tail is
                // really on disk for recovery to find.
                self.file.write_all(&frame[..keep])?;
                let _ = self.file.sync_data();
                if unwind {
                    return Err(crate::fault::injected_error("wal.append.frame").into());
                }
                crate::fault::crash_now("wal.append.frame");
            }
        }
        self.logical_len += frame.len() as u64;
        self.recorder.count(|m| &m.wal_appends);
        Ok(frame.len())
    }

    /// Appends one record (framed and checksummed) **without** syncing:
    /// the frame is staged until the next [`Wal::group_sync`] makes the
    /// whole batch durable under a single fsync (group commit).
    ///
    /// On error the file is rolled back to the end of the last intact
    /// frame — which may itself still be staged — so a failed append
    /// never erases frames already staged by the same batch.
    pub fn append_no_sync(&mut self, rec: &WalRecord) -> StorageResult<()> {
        let restore = self.logical_len;
        let result = self.append_no_sync_inner(rec);
        if result.is_err() {
            let _ = self.file.set_len(restore);
            let _ = self.file.sync_data();
            self.logical_len = restore;
        }
        result
    }

    fn append_no_sync_inner(&mut self, rec: &WalRecord) -> StorageResult<()> {
        let recorder = Arc::clone(&self.recorder);
        let _span = recorder.span("wal/append");
        let frame_len = self.write_frame(rec)?;
        self.recorder.emit_event(
            "wal_append",
            &[
                ("rel_id", u64::from(rec.rel_id).into()),
                ("ops", rec.ops.len().into()),
                ("frame_bytes", frame_len.into()),
                ("fsync", false.into()),
            ],
        );
        Ok(())
    }

    /// Makes every staged frame durable under one fsync.  A no-op (no
    /// fsync, no fault-site hit) when nothing is staged.
    ///
    /// On error the staged frames are rolled back to the fsynced
    /// prefix: the caller is about to report every covered commit as
    /// failed, and a frame that was never acknowledged must not
    /// resurrect its commit at recovery.
    pub fn group_sync(&mut self) -> StorageResult<()> {
        if self.logical_len == self.synced_len {
            return Ok(());
        }
        let result = self.group_sync_inner();
        if result.is_err() {
            let _ = self.file.set_len(self.synced_len);
            let _ = self.file.sync_data();
            self.logical_len = self.synced_len;
        }
        result
    }

    fn group_sync_inner(&mut self) -> StorageResult<()> {
        let _span = self.recorder.span("wal/group_sync");
        if crate::fault::crash_imminent("wal.group_fsync") {
            // An injected crash here models a power cut at the
            // group-commit boundary: the staged frames are exactly the
            // bytes such a cut may drop, so drop them deterministically
            // before dying (the same way torn-write sites persist their
            // tear first).  Every acked commit stays durable; the
            // unacked batch vanishes.
            let _ = self.file.set_len(self.synced_len);
            let _ = self.file.sync_data();
        }
        crate::fault::crash_point("wal.group_fsync")?;
        self.file.sync_data()?;
        self.synced_len = self.logical_len;
        self.recorder.count(|m| &m.wal_fsyncs);
        Ok(())
    }

    /// Bytes staged by [`Wal::append_no_sync`] and not yet covered by a
    /// [`Wal::group_sync`].
    pub fn pending_bytes(&self) -> u64 {
        self.logical_len - self.synced_len
    }

    /// Length of the known-good, fsynced prefix (the durability
    /// watermark `sys$wal` reports).
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// End of the last intact frame, synced or not.
    pub fn logical_len(&self) -> u64 {
        self.logical_len
    }

    /// How many truncations this handle has performed (rollbacks and
    /// post-checkpoint resets).
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Bytes dropped by the most recent truncation (0 if none yet).
    pub fn last_truncation_bytes(&self) -> u64 {
        self.last_truncation_bytes
    }

    fn note_truncation(&mut self, dropped: u64) {
        if dropped > 0 {
            self.truncations += 1;
            self.last_truncation_bytes = dropped;
        }
    }

    /// Reads every record, tolerating a torn tail.
    ///
    /// Returns an error only for corruption *within* the valid prefix
    /// (an interior frame whose checksum fails but whose length field is
    /// plausible and followed by more data is still treated as tail
    /// corruption from that point on: everything after the first bad
    /// frame is unusable because framing is lost).
    pub fn recover(path: &Path) -> StorageResult<Recovered> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut valid_len = 0u64;
        while data.len() - pos >= 8 {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let stored_crc =
                u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if data.len() - pos - 8 < len {
                break; // torn tail: incomplete frame
            }
            let payload = &data[pos + 8..pos + 8 + len];
            if crc32(payload) != stored_crc {
                break; // torn or corrupt from here on
            }
            match decode_record(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break,
            }
            pos += 8 + len;
            valid_len = pos as u64;
        }
        Ok(Recovered {
            records,
            valid_len,
            torn_bytes: data.len() as u64 - valid_len,
        })
    }

    /// Truncates the log to its valid prefix, discarding a torn tail.
    pub fn truncate_torn_tail(path: &Path) -> StorageResult<Recovered> {
        let rec = Self::recover(path)?;
        if rec.torn_bytes > 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(rec.valid_len)?;
            f.sync_data()?;
        }
        Ok(rec)
    }

    /// Current log size in bytes.
    pub fn len(&self) -> StorageResult<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// True iff the log holds no bytes.
    pub fn is_empty(&self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Truncates the log back to `len` bytes (a prefix that was known
    /// good), e.g. to roll back the frame of a commit whose in-memory
    /// apply failed after the write-ahead append.
    pub fn truncate_to(&mut self, len: u64) -> StorageResult<()> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        self.note_truncation(self.logical_len.saturating_sub(len));
        self.synced_len = self.synced_len.min(len);
        self.logical_len = len;
        Ok(())
    }

    /// Truncates the whole log (after a checkpoint has captured its
    /// effects).
    pub fn reset(&mut self) -> StorageResult<()> {
        crate::fault::crash_point("wal.reset.pre_truncate")?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.note_truncation(self.logical_len);
        self.synced_len = 0;
        self.logical_len = 0;
        crate::fault::crash_point("wal.reset.post_truncate")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::period::Period;
    use chronos_core::tuple::tuple;

    fn temp_wal(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chronos-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                rel_id: 1,
                tx_time: Chronon::new(100),
                ops: vec![HistoricalOp::insert(
                    tuple(["Merrie", "associate"]),
                    Period::from_start(Chronon::new(90)),
                )],
            },
            WalRecord {
                rel_id: 1,
                tx_time: Chronon::new(110),
                ops: vec![
                    HistoricalOp::remove(RowSelector::tuple(tuple(["Merrie", "associate"]))),
                    HistoricalOp::insert(
                        tuple(["Merrie", "full"]),
                        Period::from_start(Chronon::new(105)),
                    ),
                ],
            },
            WalRecord {
                rel_id: 2,
                tx_time: Chronon::new(120),
                ops: vec![HistoricalOp::set_validity(
                    RowSelector::exact(
                        tuple(["Mike", "assistant"]),
                        Period::from_start(Chronon::new(80)),
                    ),
                    Period::new(Chronon::new(80), Chronon::new(118)).unwrap(),
                )],
            },
        ]
    }

    #[test]
    fn record_codec_round_trips() {
        for rec in sample_records() {
            let payload = encode_record(&rec);
            assert_eq!(decode_record(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn append_and_recover() {
        let path = temp_wal("basic");
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.records, sample_records());
        assert_eq!(rec.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_missing_file_is_empty() {
        let path = temp_wal("missing");
        let rec = Wal::recover(&path).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.valid_len, 0);
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncatable() {
        let path = temp_wal("torn");
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let full_len = wal.len().unwrap();
        drop(wal);
        // Simulate a crash mid-append: write a partial frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55, 0x02, 0x00, 0x00, 0xAA]).unwrap();
        }
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.valid_len, full_len);
        assert_eq!(rec.torn_bytes, 5);
        let rec = Wal::truncate_torn_tail(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_frame_stops_recovery_at_last_good_record() {
        let path = temp_wal("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        // Flip a byte in the *second* frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload_start = 8 + first_len + 8;
        bytes[second_payload_start + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rec = Wal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 1, "only the first record survives");
        assert!(rec.torn_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    /// One test covers both group-commit scenarios (staging + unwind):
    /// the unwind half arms the process-global fault registry, and a
    /// single test keeps the only `group_sync` callers in this binary
    /// from racing an armed plan.
    #[test]
    fn group_append_stages_until_group_sync_and_unwinds_cleanly() {
        let path = temp_wal("group");
        let mut wal = Wal::open(&path).unwrap();
        let recs = sample_records();
        for rec in &recs {
            wal.append_no_sync(rec).unwrap();
        }
        assert!(wal.pending_bytes() > 0, "frames staged, not yet synced");
        // The frames are in the file (recovery would replay them after
        // a kill that leaves the page cache intact) …
        assert_eq!(Wal::recover(&path).unwrap().records, recs);
        // … and one group_sync covers them all.
        wal.group_sync().unwrap();
        assert_eq!(wal.pending_bytes(), 0);
        // With nothing staged, group_sync is a no-op.
        wal.group_sync().unwrap();
        assert_eq!(Wal::recover(&path).unwrap().records, recs);

        // A failed group fsync must drop exactly the staged batch.
        let synced = wal.len().unwrap();
        wal.append_no_sync(&recs[0]).unwrap();
        wal.append_no_sync(&recs[1]).unwrap();
        crate::fault::install(std::sync::Arc::new(crate::fault::FaultPlan::error_at(
            "wal.group_fsync",
            1,
        )));
        let err = wal.group_sync().unwrap_err();
        crate::fault::clear();
        assert!(err.to_string().contains("wal.group_fsync"), "{err}");
        // The staged batch is gone; the fsynced prefix survives.
        assert_eq!(wal.pending_bytes(), 0);
        assert_eq!(wal.len().unwrap(), synced);
        assert_eq!(Wal::recover(&path).unwrap().records, recs);
        // The log is usable again after the error.
        wal.append_no_sync(&recs[0]).unwrap();
        wal.group_sync().unwrap();
        assert_eq!(
            Wal::recover(&path).unwrap().records.len(),
            recs.len() + 1,
            "post-error staging works"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_wal("reset");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.reset().unwrap();
        assert!(wal.is_empty().unwrap());
        assert!(Wal::recover(&path).unwrap().records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
