//! A dynamic interval tree.
//!
//! Rollback (`as of t`) and timeslice (`valid at t`) queries are stabbing
//! queries: *which rows' periods contain the instant t?*  A linear scan
//! is Θ(n); this tree answers in O(log n + k).
//!
//! The structure is a treap (randomized BST) keyed by
//! `(start, end, sequence)` with a `max_end` augmentation per subtree.
//! Priorities come from a deterministic xorshift generator so behaviour
//! is reproducible; expected height is logarithmic regardless of
//! insertion order.

use chronos_core::period::Period;
use chronos_core::timepoint::TimePoint;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

struct Node<V> {
    period: Period,
    value: V,
    seq: u64,
    priority: u64,
    max_end: TimePoint,
    left: Option<Box<Node<V>>>,
    right: Option<Box<Node<V>>>,
}

impl<V> Node<V> {
    fn key(&self) -> (i128, i128, u64) {
        (
            self.period.start().order_key(),
            self.period.end().order_key(),
            self.seq,
        )
    }

    fn update(&mut self) {
        let mut m = self.period.end();
        if let Some(l) = &self.left {
            m = m.max_of(l.max_end);
        }
        if let Some(r) = &self.right {
            m = m.max_of(r.max_end);
        }
        self.max_end = m;
    }
}

/// A multiset of `(Period, V)` entries supporting stabbing and overlap
/// queries.
pub struct IntervalTree<V> {
    root: Option<Box<Node<V>>>,
    len: usize,
    rng: XorShift,
    next_seq: u64,
}

impl<V: PartialEq> Default for IntervalTree<V> {
    fn default() -> Self {
        IntervalTree::new()
    }
}

impl<V: PartialEq> IntervalTree<V> {
    /// Creates an empty tree.
    pub fn new() -> IntervalTree<V> {
        IntervalTree {
            root: None,
            len: 0,
            rng: XorShift(0x9E37_79B9_7F4A_7C15),
            next_seq: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry.  Empty periods are stored but never match any
    /// query.
    pub fn insert(&mut self, period: Period, value: V) {
        let node = Box::new(Node {
            period,
            value,
            seq: self.next_seq,
            priority: self.rng.next(),
            max_end: period.end(),
            left: None,
            right: None,
        });
        self.next_seq += 1;
        let root = self.root.take();
        self.root = Some(Self::insert_node(root, node));
        self.len += 1;
    }

    fn insert_node(tree: Option<Box<Node<V>>>, node: Box<Node<V>>) -> Box<Node<V>> {
        match tree {
            None => node,
            Some(mut t) => {
                if node.priority > t.priority {
                    // Split t around node's key.
                    let (l, r) = Self::split(Some(t), &node.key());
                    let mut n = node;
                    n.left = l;
                    n.right = r;
                    n.update();
                    n
                } else {
                    if node.key() < t.key() {
                        t.left = Some(Self::insert_node(t.left.take(), node));
                    } else {
                        t.right = Some(Self::insert_node(t.right.take(), node));
                    }
                    t.update();
                    t
                }
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn split(
        tree: Option<Box<Node<V>>>,
        key: &(i128, i128, u64),
    ) -> (Option<Box<Node<V>>>, Option<Box<Node<V>>>) {
        match tree {
            None => (None, None),
            Some(mut t) => {
                if &t.key() < key {
                    let (l, r) = Self::split(t.right.take(), key);
                    t.right = l;
                    t.update();
                    (Some(t), r)
                } else {
                    let (l, r) = Self::split(t.left.take(), key);
                    t.left = r;
                    t.update();
                    (l, Some(t))
                }
            }
        }
    }

    /// Removes one entry equal to `(period, value)`, returning whether an
    /// entry was removed.
    pub fn remove(&mut self, period: Period, value: &V) -> bool {
        let root = self.root.take();
        let (root, removed) = Self::remove_rec(root, period, value);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    #[allow(clippy::type_complexity)]
    fn remove_rec(
        tree: Option<Box<Node<V>>>,
        period: Period,
        value: &V,
    ) -> (Option<Box<Node<V>>>, bool) {
        let Some(mut t) = tree else {
            return (None, false);
        };
        let pkey = (period.start().order_key(), period.end().order_key());
        let tkey = (t.period.start().order_key(), t.period.end().order_key());
        if pkey == tkey && &t.value == value {
            // Merge children and drop this node.
            let merged = Self::merge(t.left.take(), t.right.take());
            return (merged, true);
        }
        let removed = match pkey.cmp(&tkey) {
            std::cmp::Ordering::Less => {
                let (l, rem) = Self::remove_rec(t.left.take(), period, value);
                t.left = l;
                rem
            }
            std::cmp::Ordering::Greater => {
                let (r, rem) = Self::remove_rec(t.right.take(), period, value);
                t.right = r;
                rem
            }
            std::cmp::Ordering::Equal => {
                // Equal (start, end) keys may sit on either side because
                // the sequence number breaks ties: search left, then right.
                let (l, rem) = Self::remove_rec(t.left.take(), period, value);
                t.left = l;
                if rem {
                    true
                } else {
                    let (r, rem2) = Self::remove_rec(t.right.take(), period, value);
                    t.right = r;
                    rem2
                }
            }
        };
        t.update();
        (Some(t), removed)
    }

    fn merge(l: Option<Box<Node<V>>>, r: Option<Box<Node<V>>>) -> Option<Box<Node<V>>> {
        match (l, r) {
            (None, r) => r,
            (l, None) => l,
            (Some(mut a), Some(mut b)) => {
                if a.priority > b.priority {
                    a.right = Self::merge(a.right.take(), Some(b));
                    a.update();
                    Some(a)
                } else {
                    b.left = Self::merge(Some(a), b.left.take());
                    b.update();
                    Some(b)
                }
            }
        }
    }

    /// Visits every value whose period contains the instant `t`.
    pub fn stab<'a>(&'a self, t: TimePoint, mut f: impl FnMut(Period, &'a V)) {
        Self::stab_rec(&self.root, t, &mut f);
    }

    fn stab_rec<'a>(
        node: &'a Option<Box<Node<V>>>,
        t: TimePoint,
        f: &mut impl FnMut(Period, &'a V),
    ) {
        let Some(n) = node else { return };
        // Prune: nothing in this subtree can contain t.  A period
        // contains `+∞` only when its end is `+∞` (see
        // `Period::contains_point`), so at `t = +∞` prune only subtrees
        // with no open-ended period.
        let prune = match t {
            TimePoint::PlusInfinity => n.max_end != TimePoint::PlusInfinity,
            _ => n.max_end <= t,
        };
        if prune {
            return;
        }
        Self::stab_rec(&n.left, t, f);
        if n.period.contains_point(t) {
            f(n.period, &n.value);
        }
        // Keys to the right start at or after this node's start; if that
        // start is already past t, nothing to the right can contain t.
        if n.period.start() <= t {
            Self::stab_rec(&n.right, t, f);
        }
    }

    /// Visits every value whose period overlaps `q`.
    pub fn overlapping<'a>(&'a self, q: Period, mut f: impl FnMut(Period, &'a V)) {
        if q.is_empty() {
            return;
        }
        Self::overlap_rec(&self.root, q, &mut f);
    }

    fn overlap_rec<'a>(
        node: &'a Option<Box<Node<V>>>,
        q: Period,
        f: &mut impl FnMut(Period, &'a V),
    ) {
        let Some(n) = node else { return };
        if n.max_end <= q.start() {
            return;
        }
        Self::overlap_rec(&n.left, q, f);
        if n.period.overlaps(q) {
            f(n.period, &n.value);
        }
        if n.period.start() < q.end() {
            Self::overlap_rec(&n.right, q, f);
        }
    }

    /// Collects stabbing results into a vector (convenience).
    pub fn stab_values(&self, t: TimePoint) -> Vec<&V> {
        let mut out = Vec::new();
        self.stab(t, |_, v| out.push(v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::chronon::Chronon;

    fn p(a: i64, b: i64) -> Period {
        Period::new(Chronon::new(a), Chronon::new(b)).unwrap()
    }

    fn tp(t: i64) -> TimePoint {
        TimePoint::at(Chronon::new(t))
    }

    #[test]
    fn stab_finds_exactly_containing() {
        let mut t = IntervalTree::new();
        t.insert(p(0, 10), "a");
        t.insert(p(5, 15), "b");
        t.insert(p(12, 20), "c");
        t.insert(Period::from_start(Chronon::new(8)), "open");
        let mut hits: Vec<&&str> = t.stab_values(tp(7));
        hits.sort();
        assert_eq!(hits, [&"a", &"b"]);
        let mut hits = t.stab_values(tp(13));
        hits.sort();
        assert_eq!(hits, [&"b", &"c", &"open"]);
        assert!(t.stab_values(tp(-1)).is_empty());
        // +∞ stabs only open periods.
        assert_eq!(t.stab_values(TimePoint::INFINITY), [&"open"]);
    }

    #[test]
    fn overlap_queries() {
        let mut t = IntervalTree::new();
        t.insert(p(0, 5), 1);
        t.insert(p(5, 10), 2);
        t.insert(p(20, 30), 3);
        let mut got = Vec::new();
        t.overlapping(p(4, 6), |_, v| got.push(*v));
        got.sort();
        assert_eq!(got, [1, 2]);
        let mut got = Vec::new();
        t.overlapping(p(10, 20), |_, v| got.push(*v));
        assert!(got.is_empty());
        t.overlapping(Period::EMPTY, |_, v| got.push(*v));
        assert!(got.is_empty());
    }

    #[test]
    fn remove_specific_entries() {
        let mut t = IntervalTree::new();
        t.insert(p(0, 10), "x");
        t.insert(p(0, 10), "y"); // same period, different value
        assert_eq!(t.len(), 2);
        assert!(t.remove(p(0, 10), &"x"));
        assert!(!t.remove(p(0, 10), &"x"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.stab_values(tp(5)), [&"y"]);
    }

    #[test]
    fn agrees_with_linear_scan_on_random_data() {
        let mut rng = XorShift(42);
        let mut tree = IntervalTree::new();
        let mut entries: Vec<(Period, u64)> = Vec::new();
        for i in 0..2000u64 {
            let a = (rng.next() % 1000) as i64;
            let len = (rng.next() % 50) as i64 + 1;
            let per = p(a, a + len);
            tree.insert(per, i);
            entries.push((per, i));
            // Occasionally remove a random existing entry.
            if i % 7 == 0 && !entries.is_empty() {
                let idx = (rng.next() as usize) % entries.len();
                let (rp, rv) = entries.swap_remove(idx);
                assert!(tree.remove(rp, &rv));
            }
        }
        assert_eq!(tree.len(), entries.len());
        for probe in (0..1050).step_by(13) {
            let mut got: Vec<u64> = tree.stab_values(tp(probe)).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<u64> = entries
                .iter()
                .filter(|(per, _)| per.contains(Chronon::new(probe)))
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "stab at {probe}");
        }
        for lo in (0..1000).step_by(97) {
            let q = p(lo, lo + 40);
            let mut got = Vec::new();
            tree.overlapping(q, |_, v| got.push(*v));
            got.sort_unstable();
            let mut want: Vec<u64> = entries
                .iter()
                .filter(|(per, _)| per.overlaps(q))
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "overlap at {lo}");
        }
    }

    #[test]
    fn handles_open_ended_transaction_periods() {
        // The rollback access path: tx periods with ∞ ends.
        let mut t = IntervalTree::new();
        t.insert(Period::from_start(Chronon::new(100)), "v1-closed-later");
        t.insert(Period::from_start(Chronon::new(200)), "v2");
        // Close v1 at 200 (as a Remove+reinsert, the way the table does).
        assert!(t.remove(Period::from_start(Chronon::new(100)), &"v1-closed-later"));
        t.insert(p(100, 200), "v1");
        assert_eq!(t.stab_values(tp(150)), [&"v1"]);
        let mut hits = t.stab_values(tp(250));
        hits.sort();
        assert_eq!(hits, [&"v2"]);
    }
}
