//! An in-memory B+ tree.
//!
//! Keys live in internal nodes for routing; key/value pairs live in the
//! leaves.  The fanout is fixed at [`ORDER`].  Deletion removes entries
//! from leaves without rebalancing (underfull leaves are tolerated, as in
//! many production engines); the tree therefore never returns stale
//! entries but may hold sparse leaves after heavy churn — `len` and
//! lookup costs remain correct.
//!
//! The implementation is deliberately dependency-free and is
//! property-tested against `std::collections::BTreeMap`.

use std::borrow::Borrow;
use std::fmt::Debug;

/// Maximum number of keys per node.
pub const ORDER: usize = 32;

/// Result of inserting into a subtree: the separator key and new right
/// sibling when the child split.
type Split<K, V> = Option<(K, Node<K, V>)>;

enum Node<K, V> {
    Leaf {
        entries: Vec<(K, V)>,
    },
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i+1]`.
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn first_key(&self) -> Option<&K> {
        match self {
            Node::Leaf { entries } => entries.first().map(|(k, _)| k),
            Node::Internal { children, .. } => children.first().and_then(Node::first_key),
        }
    }
}

/// An ordered map with B+ tree structure.
pub struct BPlusTree<K, V> {
    root: Node<K, V>,
    len: usize,
}

impl<K: Ord + Clone + Debug, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        BPlusTree::new()
    }
}

impl<K: Ord + Clone + Debug, V> BPlusTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> BPlusTree<K, V> {
        BPlusTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a key/value pair, returning the previous value for the key
    /// if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (old, split) = Self::insert_rec(&mut self.root, key, value);
        if old.is_none() {
            self.len += 1;
        }
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            };
        }
        old
    }

    fn insert_rec(node: &mut Node<K, V>, key: K, value: V) -> (Option<V>, Split<K, V>) {
        match node {
            Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => (Some(std::mem::replace(&mut entries[i].1, value)), None),
                Err(i) => {
                    entries.insert(i, (key, value));
                    if entries.len() > ORDER {
                        let right_entries = entries.split_off(entries.len() / 2);
                        let sep = right_entries[0].0.clone();
                        (
                            None,
                            Some((
                                sep,
                                Node::Leaf {
                                    entries: right_entries,
                                },
                            )),
                        )
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let (old, split) = Self::insert_rec(&mut children[idx], key, value);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let sep_up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // sep_up moves up
                        let right_children = children.split_off(mid + 1);
                        return (
                            old,
                            Some((
                                sep_up,
                                Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                },
                            )),
                        );
                    }
                }
                (old, None)
            }
        }
    }

    /// Looks up the value for `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by(|(k, _)| k.borrow().cmp(key))
                        .ok()
                        .map(|i| &entries[i].1);
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.borrow().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    /// Mutable lookup.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return match entries.binary_search_by(|(k, _)| k.borrow().cmp(key)) {
                        Ok(i) => Some(&mut entries[i].1),
                        Err(_) => None,
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.borrow().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &mut children[idx];
                }
            }
        }
    }

    /// Removes `key`, returning its value if present.  Leaves are not
    /// rebalanced (see module docs).
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return match entries.binary_search_by(|(k, _)| k.borrow().cmp(key)) {
                        Ok(i) => {
                            self.len -= 1;
                            Some(entries.remove(i).1)
                        }
                        Err(_) => None,
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.borrow().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &mut children[idx];
                }
            }
        }
    }

    /// Visits entries with keys in `[lo, hi]` in ascending order.
    pub fn range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) {
        Self::range_rec(&self.root, lo, hi, &mut f);
    }

    fn range_rec(node: &Node<K, V>, lo: &K, hi: &K, f: &mut impl FnMut(&K, &V)) {
        match node {
            Node::Leaf { entries } => {
                let start = entries.partition_point(|(k, _)| k < lo);
                for (k, v) in &entries[start..] {
                    if k > hi {
                        break;
                    }
                    f(k, v);
                }
            }
            Node::Internal { keys, children } => {
                let start = match keys.binary_search(lo) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                for (i, child) in children.iter().enumerate().skip(start) {
                    // Prune children entirely above `hi`.
                    if i > 0 && &keys[i - 1] > hi {
                        break;
                    }
                    Self::range_rec(child, lo, hi, f);
                }
            }
        }
    }

    /// Visits all entries in ascending key order.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        Self::for_each_rec(&self.root, &mut f);
    }

    fn for_each_rec(node: &Node<K, V>, f: &mut impl FnMut(&K, &V)) {
        match node {
            Node::Leaf { entries } => {
                for (k, v) in entries {
                    f(k, v);
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    Self::for_each_rec(c, f);
                }
            }
        }
    }

    /// The smallest key, if any.
    pub fn min_key(&self) -> Option<&K> {
        self.root.first_key()
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_overwrite() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, "five"), None);
        assert_eq!(t.insert(3, "three"), None);
        assert_eq!(t.insert(5, "FIVE"), Some("five"));
        assert_eq!(t.get(&5), Some(&"FIVE"));
        assert_eq!(t.get(&4), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn splits_maintain_order() {
        let mut t = BPlusTree::new();
        let n = 10_000;
        for i in 0..n {
            // Insert in a scrambled order.
            let k = (i * 7919) % n;
            t.insert(k, k * 2);
        }
        assert_eq!(t.len(), n as usize);
        assert!(
            t.height() >= 3,
            "10k keys should split, height {}",
            t.height()
        );
        let mut prev = -1;
        let mut count = 0;
        t.for_each(|k, v| {
            assert!(*k > prev);
            assert_eq!(*v, k * 2);
            prev = *k;
            count += 1;
        });
        assert_eq!(count, n);
    }

    #[test]
    fn range_queries_match_btreemap() {
        let mut t = BPlusTree::new();
        let mut m = BTreeMap::new();
        for i in 0..1000 {
            let k = (i * 37) % 500; // duplicates overwrite
            t.insert(k, i);
            m.insert(k, i);
        }
        assert_eq!(t.len(), m.len());
        for (lo, hi) in [(0, 499), (10, 20), (100, 100), (450, 600), (600, 700)] {
            let mut got = Vec::new();
            t.range(&lo, &hi, |k, v| got.push((*k, *v)));
            let want: Vec<(i32, i32)> = m.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn removal_then_reinsert() {
        let mut t = BPlusTree::new();
        for i in 0..500 {
            t.insert(i, i);
        }
        for i in (0..500).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert_eq!(t.len(), 250);
        assert_eq!(t.remove(&0), None);
        for i in (0..500).step_by(2) {
            assert_eq!(t.get(&i), None);
            assert_eq!(t.get(&(i + 1)), Some(&(i + 1)));
        }
        for i in (0..500).step_by(2) {
            t.insert(i, -i);
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(&4), Some(&-4));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BPlusTree::new();
        t.insert("k".to_string(), vec![1]);
        t.get_mut("k").unwrap().push(2);
        assert_eq!(t.get("k"), Some(&vec![1, 2]));
        assert!(t.get_mut("absent").is_none());
    }

    #[test]
    fn min_key_tracks_smallest() {
        let mut t = BPlusTree::new();
        assert_eq!(t.min_key(), None);
        for k in [50, 10, 90, 5, 70] {
            t.insert(k, ());
        }
        assert_eq!(t.min_key(), Some(&5));
    }
}
