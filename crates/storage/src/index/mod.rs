//! Index structures.
//!
//! * [`bptree`] — an in-memory B+ tree for equality and range lookups
//!   (secondary indexes on explicit attributes, and the transaction-time
//!   commit index);
//! * [`interval`] — a randomized interval tree (treap with `max_end`
//!   augmentation) answering stabbing and overlap queries over valid-time
//!   and transaction-time periods, the access paths behind the paper's
//!   rollback and timeslice operations.

pub mod bptree;
pub mod interval;

pub use bptree::BPlusTree;
pub use interval::IntervalTree;
