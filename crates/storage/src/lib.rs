//! # chronos-storage
//!
//! Storage-engine substrate for ChronosDB.
//!
//! The paper (1985) observes that "there has been nothing published on …
//! implementing historical or temporal databases"; this crate is the
//! implementation substrate that makes the taxonomy of `chronos-core`
//! durable and fast:
//!
//! * [`codec`] — a hand-written, length-delimited binary encoding for
//!   tuples, timestamps and rows, with CRC-32 integrity;
//! * [`page`] — 8 KiB slotted pages;
//! * [`pager`] — page stores (in-memory and file-backed) and an LRU
//!   buffer pool;
//! * [`heap`] — heap files of records over pages;
//! * [`wal`] — a write-ahead log with checksummed frames, replay
//!   recovery, and tolerance of torn tails;
//! * [`index`] — a B+ tree for equality/range lookups, an interval tree
//!   for valid-time stabbing, and a transaction-time version index;
//! * [`txn`] — monotonic commit-timestamp allocation over a
//!   [`Clock`](chronos_core::clock::Clock);
//! * [`table`] — [`table::StoredBitemporalTable`], a durable,
//!   index-accelerated implementation of
//!   [`TemporalStore`](chronos_core::relation::temporal::TemporalStore)
//!   that is differentially tested against the in-memory reference
//!   stores of `chronos-core`.

pub mod codec;
pub mod error;
/// Deterministic fault injection (re-exported from `chronos-obs` so
/// storage call sites and the torture harness share one registry).
pub use chronos_obs::fault;
pub mod heap;
pub mod index;
pub mod inspect;
pub mod page;
pub mod pager;
pub mod segment;
pub mod table;
pub mod txn;
pub mod wal;

pub use error::{StorageError, StorageResult};
