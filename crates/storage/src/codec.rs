//! Hand-written binary encoding for storage.
//!
//! ChronosDB persists tuples, timestamps and rows with a compact,
//! self-describing, length-delimited encoding:
//!
//! * unsigned integers as LEB128 varints;
//! * signed integers zig-zag folded first;
//! * strings and byte blobs length-prefixed;
//! * values, validities and time points tagged with a single type byte.
//!
//! Integrity is provided by [`crc32`], the standard IEEE CRC-32 used to
//! frame WAL records and page images.  The codec is deliberately written
//! by hand rather than pulling in a serialization crate: a storage
//! engine's on-disk format is part of its contract, and the tests here
//! pin it.

use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::relation::Validity;
use chronos_core::timepoint::TimePoint;
use chronos_core::tuple::Tuple;
use chronos_core::value::Value;

use crate::error::{StorageError, StorageResult};

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected)
// ---------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// IEEE CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Primitive writers / readers
// ---------------------------------------------------------------------

/// Appends a LEB128 varint.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a zig-zag folded signed varint.
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends a length-prefixed byte blob.
pub fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_uvarint(buf, data.len() as u64);
    buf.extend_from_slice(data);
}

/// A cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(&self, what: &str) -> StorageError {
        StorageError::Corrupt(format!("{what} at offset {}", self.pos))
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> StorageResult<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.corrupt("unexpected end"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    pub fn get_uvarint(&mut self) -> StorageResult<u64> {
        let mut shift = 0u32;
        let mut v = 0u64;
        loop {
            let b = self.get_u8()?;
            if shift >= 64 {
                return Err(self.corrupt("varint overflow"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zig-zag folded signed varint.
    pub fn get_ivarint(&mut self) -> StorageResult<i64> {
        let u = self.get_uvarint()?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    /// Advances past `n` bytes without interpreting them.
    pub fn skip(&mut self, n: usize) -> StorageResult<()> {
        if self.remaining() < n {
            return Err(self.corrupt("skip overruns buffer"));
        }
        self.pos += n;
        Ok(())
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> StorageResult<&'a [u8]> {
        let len = self.get_uvarint()? as usize;
        if self.remaining() < len {
            return Err(self.corrupt("blob overruns buffer"));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> StorageResult<&'a str> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes)
            .map_err(|_| StorageError::Corrupt("invalid utf-8 in string".into()))
    }
}

// ---------------------------------------------------------------------
// Domain encoders
// ---------------------------------------------------------------------

const TAG_STR: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_DATE: u8 = 4;

/// Encodes a single value.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_bytes(buf, s.as_bytes());
        }
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_ivarint(buf, *i);
        }
        Value::Float(x) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Date(c) => {
            buf.push(TAG_DATE);
            put_ivarint(buf, c.ticks());
        }
    }
}

/// Decodes a single value.
pub fn get_value(r: &mut Reader<'_>) -> StorageResult<Value> {
    match r.get_u8()? {
        TAG_STR => Ok(Value::str(r.get_str()?)),
        TAG_INT => Ok(Value::Int(r.get_ivarint()?)),
        TAG_FLOAT => {
            let mut b = [0u8; 8];
            for slot in &mut b {
                *slot = r.get_u8()?;
            }
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(b))))
        }
        TAG_BOOL => Ok(Value::Bool(r.get_u8()? != 0)),
        TAG_DATE => Ok(Value::Date(Chronon::new(r.get_ivarint()?))),
        t => Err(StorageError::Corrupt(format!("unknown value tag {t}"))),
    }
}

/// Encodes a tuple (arity-prefixed).
pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_uvarint(buf, t.arity() as u64);
    for v in t.values() {
        put_value(buf, v);
    }
}

/// Decodes a tuple.
pub fn get_tuple(r: &mut Reader<'_>) -> StorageResult<Tuple> {
    let n = r.get_uvarint()? as usize;
    if n > 1 << 20 {
        return Err(StorageError::Corrupt(format!("implausible arity {n}")));
    }
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(get_value(r)?);
    }
    Ok(Tuple::new(vals))
}

const TP_MINUS_INF: u8 = 0;
const TP_FINITE: u8 = 1;
const TP_PLUS_INF: u8 = 2;

/// Encodes a time point.
pub fn put_timepoint(buf: &mut Vec<u8>, p: TimePoint) {
    match p {
        TimePoint::MinusInfinity => buf.push(TP_MINUS_INF),
        TimePoint::Finite(c) => {
            buf.push(TP_FINITE);
            put_ivarint(buf, c.ticks());
        }
        TimePoint::PlusInfinity => buf.push(TP_PLUS_INF),
    }
}

/// Decodes a time point.
pub fn get_timepoint(r: &mut Reader<'_>) -> StorageResult<TimePoint> {
    match r.get_u8()? {
        TP_MINUS_INF => Ok(TimePoint::MinusInfinity),
        TP_FINITE => Ok(TimePoint::Finite(Chronon::new(r.get_ivarint()?))),
        TP_PLUS_INF => Ok(TimePoint::PlusInfinity),
        t => Err(StorageError::Corrupt(format!("unknown timepoint tag {t}"))),
    }
}

/// Encodes a period.
pub fn put_period(buf: &mut Vec<u8>, p: Period) {
    put_timepoint(buf, p.start());
    put_timepoint(buf, p.end());
}

/// Decodes a period.
pub fn get_period(r: &mut Reader<'_>) -> StorageResult<Period> {
    let start = get_timepoint(r)?;
    let end = get_timepoint(r)?;
    Period::new(start, end)
        .ok_or_else(|| StorageError::Corrupt(format!("backwards period [{start}, {end})")))
}

const VAL_INTERVAL: u8 = 0;
const VAL_EVENT: u8 = 1;

/// Encodes a validity stamp.
pub fn put_validity(buf: &mut Vec<u8>, v: Validity) {
    match v {
        Validity::Interval(p) => {
            buf.push(VAL_INTERVAL);
            put_period(buf, p);
        }
        Validity::Event(c) => {
            buf.push(VAL_EVENT);
            put_ivarint(buf, c.ticks());
        }
    }
}

/// Decodes a validity stamp.
pub fn get_validity(r: &mut Reader<'_>) -> StorageResult<Validity> {
    match r.get_u8()? {
        VAL_INTERVAL => Ok(Validity::Interval(get_period(r)?)),
        VAL_EVENT => Ok(Validity::Event(Chronon::new(r.get_ivarint()?))),
        t => Err(StorageError::Corrupt(format!("unknown validity tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::tuple::tuple;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"chronos"), crc32(b"chronoS"));
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.get_uvarint().unwrap(), v);
            assert!(r.is_exhausted());
        }
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.get_ivarint().unwrap(), v);
        }
    }

    #[test]
    fn value_round_trips() {
        let values = [
            Value::str("Merrie"),
            Value::str(""),
            Value::Int(-42),
            Value::Float(3.5),
            Value::Float(f64::NEG_INFINITY),
            Value::Bool(true),
            Value::Date(Chronon::new(4712)),
        ];
        for v in &values {
            let mut buf = Vec::new();
            put_value(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(&get_value(&mut r).unwrap(), v);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn tuple_round_trips() {
        let t = tuple(["Merrie", "full"]);
        let mut buf = Vec::new();
        put_tuple(&mut buf, &t);
        let mut r = Reader::new(&buf);
        assert_eq!(get_tuple(&mut r).unwrap(), t);
    }

    #[test]
    fn period_and_validity_round_trip() {
        let p = Period::new(Chronon::new(3), Chronon::new(9)).unwrap();
        let open = Period::from_start(Chronon::new(3));
        for per in [p, open, Period::ALWAYS] {
            let mut buf = Vec::new();
            put_period(&mut buf, per);
            let mut r = Reader::new(&buf);
            assert_eq!(get_period(&mut r).unwrap(), per);
        }
        for v in [Validity::Interval(p), Validity::Event(Chronon::new(7))] {
            let mut buf = Vec::new();
            put_validity(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(get_validity(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let t = tuple(["Merrie", "full"]);
        let mut buf = Vec::new();
        put_tuple(&mut buf, &t);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(get_tuple(&mut r).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut r = Reader::new(&[200]);
        assert!(get_value(&mut r).is_err());
        let mut r = Reader::new(&[9]);
        assert!(get_timepoint(&mut r).is_err());
    }

    #[test]
    fn backwards_period_rejected() {
        let mut buf = Vec::new();
        put_timepoint(&mut buf, TimePoint::at(Chronon::new(9)));
        put_timepoint(&mut buf, TimePoint::at(Chronon::new(3)));
        let mut r = Reader::new(&buf);
        assert!(get_period(&mut r).is_err());
    }
}
