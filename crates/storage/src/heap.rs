//! Heap files: unordered record storage over pages.
//!
//! A [`HeapFile`] stores variable-length records across the pages of a
//! [`BufferPool`], handing out stable [`RecordId`]s.  Insertion uses a
//! simple last-page-first policy with a scan fallback, which keeps pages
//! dense for the append-mostly workloads of temporal tables.

use crate::error::{StorageError, StorageResult};
use crate::page::{RecordId, MAX_RECORD};
use crate::pager::{BufferPool, PageStore};

/// An unordered file of records.
pub struct HeapFile<S: PageStore> {
    pool: BufferPool<S>,
    /// Page to try first on insert.
    insert_hint: u32,
    records: usize,
}

impl<S: PageStore> HeapFile<S> {
    /// Creates a heap over a fresh or reopened pool, scanning existing
    /// pages to recover the record count.
    pub fn open(pool: BufferPool<S>) -> StorageResult<HeapFile<S>> {
        let mut records = 0usize;
        let n = pool.num_pages();
        for page_no in 0..n {
            records += pool.with_page(page_no, |p| p.live_records())?;
        }
        Ok(HeapFile {
            pool,
            insert_hint: n.saturating_sub(1),
            records,
        })
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records
    }

    /// True iff the heap holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of pages allocated.
    pub fn pages(&self) -> u32 {
        self.pool.num_pages()
    }

    /// The underlying pool (for flushing).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Inserts a record, returning its id.
    pub fn insert(&mut self, data: &[u8]) -> StorageResult<RecordId> {
        crate::fault::crash_point("heap.insert")?;
        if data.len() > MAX_RECORD {
            return Err(StorageError::Corrupt(format!(
                "record of {} bytes exceeds page capacity {MAX_RECORD}",
                data.len()
            )));
        }
        // Try the hint page, then a bounded scan, then allocate.
        let n = self.pool.num_pages();
        let candidates = std::iter::once(self.insert_hint)
            .chain(0..n)
            .filter(|&p| p < n);
        for page_no in candidates {
            let fits = self.pool.with_page(page_no, |p| p.fits(data.len()))?;
            if fits {
                let slot = self.pool.with_page_mut(page_no, |p| p.insert(data))??;
                self.insert_hint = page_no;
                self.records += 1;
                return Ok(RecordId {
                    page: page_no,
                    slot,
                });
            }
        }
        let page_no = self.pool.allocate()?;
        let slot = self.pool.with_page_mut(page_no, |p| p.insert(data))??;
        self.insert_hint = page_no;
        self.records += 1;
        Ok(RecordId {
            page: page_no,
            slot,
        })
    }

    /// Reads the record at `rid`.
    pub fn get(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        self.pool
            .with_page(rid.page, |p| p.get(rid.slot).map(<[u8]>::to_vec))?
    }

    /// Deletes the record at `rid`.
    pub fn delete(&mut self, rid: RecordId) -> StorageResult<()> {
        self.pool
            .with_page_mut(rid.page, |p| p.delete(rid.slot))??;
        self.records -= 1;
        Ok(())
    }

    /// Replaces the record at `rid`, possibly relocating it; returns the
    /// (new) id.
    pub fn update(&mut self, rid: RecordId, data: &[u8]) -> StorageResult<RecordId> {
        // Try in-place replacement within the same page first.
        let replaced = self.pool.with_page_mut(rid.page, |p| {
            p.delete(rid.slot)?;
            match p.insert(data) {
                Ok(slot) => Ok(Some(slot)),
                Err(StorageError::PageFull { .. }) => {
                    p.compact();
                    match p.insert(data) {
                        Ok(slot) => Ok(Some(slot)),
                        Err(StorageError::PageFull { .. }) => Ok(None),
                        Err(e) => Err(e),
                    }
                }
                Err(e) => Err(e),
            }
        })??;
        if let Some(slot) = replaced {
            return Ok(RecordId {
                page: rid.page,
                slot,
            });
        }
        self.records -= 1; // insert() below re-counts it
        self.insert(data)
    }

    /// Visits every live record in page order.
    pub fn scan(&self, mut f: impl FnMut(RecordId, &[u8])) -> StorageResult<()> {
        for page_no in 0..self.pool.num_pages() {
            self.pool.with_page(page_no, |p| {
                for (slot, data) in p.iter() {
                    f(
                        RecordId {
                            page: page_no,
                            slot,
                        },
                        data,
                    );
                }
            })?;
        }
        Ok(())
    }

    /// Collects every live record (convenience over [`scan`](HeapFile::scan)).
    pub fn collect_all(&self) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::with_capacity(self.records);
        self.scan(|rid, data| out.push((rid, data.to_vec())))?;
        Ok(out)
    }

    /// Copies the live records of one page, in slot order.
    ///
    /// This is the morsel unit of the parallel scan: the page latch is
    /// held only while bytes are copied out; decoding happens in the
    /// caller, outside the buffer-pool lock.
    pub fn page_records(&self, page_no: u32) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        self.pool.with_page(page_no, |p| {
            p.iter()
                .map(|(slot, data)| {
                    (
                        RecordId {
                            page: page_no,
                            slot,
                        },
                        data.to_vec(),
                    )
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn heap() -> HeapFile<MemPager> {
        HeapFile::open(BufferPool::new(MemPager::new(), 4)).unwrap()
    }

    #[test]
    fn insert_get_delete_across_pages() {
        let mut h = heap();
        let rec = vec![7u8; 3000];
        let ids: Vec<RecordId> = (0..10).map(|_| h.insert(&rec).unwrap()).collect();
        assert_eq!(h.len(), 10);
        assert!(h.pages() >= 4, "3 KB records spill across pages");
        for &rid in &ids {
            assert_eq!(h.get(rid).unwrap(), rec);
        }
        h.delete(ids[3]).unwrap();
        assert!(h.get(ids[3]).is_err());
        assert_eq!(h.len(), 9);
    }

    #[test]
    fn scan_visits_everything_once() {
        let mut h = heap();
        let mut expected = Vec::new();
        for i in 0..100u32 {
            let data = i.to_le_bytes().to_vec();
            h.insert(&data).unwrap();
            expected.push(data);
        }
        let mut seen: Vec<Vec<u8>> = h
            .collect_all()
            .unwrap()
            .into_iter()
            .map(|(_, d)| d)
            .collect();
        seen.sort();
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let mut h = heap();
        let small = vec![1u8; 100];
        let rid = h.insert(&small).unwrap();
        // Same-size update stays on the page.
        let rid2 = h.update(rid, &[2u8; 100]).unwrap();
        assert_eq!(rid2.page, rid.page);
        assert_eq!(h.get(rid2).unwrap(), vec![2u8; 100]);
        // Fill the page, then grow the record so it must relocate.
        while h.pool.with_page(rid2.page, |p| p.fits(3000)).unwrap() {
            h.insert(&vec![9u8; 3000]).unwrap();
        }
        let n_before = h.len();
        let rid3 = h.update(rid2, &vec![3u8; 7000]).unwrap();
        assert_eq!(h.get(rid3).unwrap(), vec![3u8; 7000]);
        assert_eq!(h.len(), n_before);
    }

    #[test]
    fn reopen_recovers_record_count() {
        let mut m = MemPager::new();
        {
            // Build through a first heap, flushing into the pager.
            let pool = BufferPool::new(&mut m, 4);
            let mut h = HeapFile::open(pool).unwrap();
            for i in 0..20u8 {
                h.insert(&[i]).unwrap();
            }
            h.pool().flush().unwrap();
        }
        let h = HeapFile::open(BufferPool::new(&mut m, 4)).unwrap();
        assert_eq!(h.len(), 20);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut h = heap();
        assert!(h.insert(&vec![0u8; MAX_RECORD + 1]).is_err());
        assert_eq!(h.len(), 0);
    }
}
