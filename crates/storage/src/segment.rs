//! Frozen-history segments: immutable, delta-encoded, mmap-backed.
//!
//! The paper warns that rollback and temporal stores pay for their
//! memory with "excessive duplication" — every version of a key repeats
//! almost all of its predecessor's bytes.  The heap stores each version
//! fully encoded (that is what makes the tail cheap to mutate), and
//! `sys$pages` prices the resulting duplication factor at ~2.7× for
//! chains of 32 versions.  A **segment** is the antidote for history
//! that can no longer change: an immutable file holding every version
//! whose transaction period is wholly past (finite `tx.end`), laid out
//! so that
//!
//! * per-key version chains store each version as a **prefix/suffix
//!   delta** against its predecessor — exactly the delta the heap's
//!   duplication factor already prices;
//! * transaction periods are **coalesce-encoded**: consecutive versions
//!   of one key abut (`prev.end == next.start`), so all but the first
//!   period store only their end point;
//! * a **bloom filter** over first-attribute key bytes plus a min/max
//!   transaction-time range let as-of point lookups skip a whole
//!   segment without touching its map;
//! * reads are **zero-copy** views into an `mmap` of the file — the
//!   skip/filter path (range check, bloom probe, directory key compare)
//!   materialises no tuples; only a matching chain is decoded.
//!
//! ## On-disk layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic "CHRONSG1"
//! 8       4     u32  relation id                   (little-endian)
//! 12      8     u64  version count
//! 20      8     u64  chain count
//! 28      8     i64  min tx start (ticks; i64::MIN = -infinity)
//! 36      8     i64  max tx end   (ticks; always finite)
//! 44      8     u64  logical bytes (sum of full heap row encodings)
//! 52      8     u64  priced delta bytes (prefix/suffix delta pricing)
//! 60      8     u64  bloom section length
//! 68      8     u64  directory section length
//! 76      8     u64  body section length
//! 84      ...   bloom:     uvarint k, uvarint m_bits, bitmap bytes
//! ...     ...   directory: per chain, bytes(key) ++ uvarint body_off
//! ...     ...   body:      per chain (at its body_off):
//!                            uvarint n
//!                            bytes(v0 payload)            -- full
//!                            n-1 × (uvarint prefix, uvarint suffix,
//!                                   bytes(mid))           -- deltas
//!                            period(p0)                   -- full
//!                            n-1 × (u8 flag;
//!                                   0 → timepoint(end)    -- abuts
//!                                   1 → period(p))        -- gap
//! len-4   4     u32 CRC-32 of bytes[0 .. len-4]           (little-endian)
//! ```
//!
//! A version's *payload* is its tuple and validity encoding (the
//! transaction period is carried by the coalesced period block).  Keys
//! are the [`codec::put_value`](crate::codec::put_value) encoding of the
//! first attribute; chains are sorted by key bytes, versions within a
//! chain by transaction start.
//!
//! ## Crash safety
//!
//! Segments are a rebuildable physical cache, never the authority: the
//! write-ahead log and checkpoint images alone reconstruct the full
//! heap, so a crash at any of the three registered sites
//! (`segment.write`, `segment.rename`, `segment.mmap_open`) loses
//! nothing — the freeze simply re-triggers later.  Heap rows are only
//! deleted *after* the segment is durable (`.tmp` + fsync + rename) and
//! mapped.

use std::fs::File;
use std::path::{Path, PathBuf};

use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::relation::temporal::BitemporalRow;
use chronos_core::relation::Validity;
use chronos_core::timepoint::TimePoint;
use chronos_core::tuple::Tuple;
use chronos_core::value::Value;

use crate::codec::{
    crc32, get_period, get_timepoint, get_tuple, get_validity, put_bytes, put_period,
    put_timepoint, put_tuple, put_uvarint, put_validity, put_value, Reader,
};
use crate::error::{StorageError, StorageResult};

/// Segment file magic: "CHRONSG1".
pub const MAGIC: &[u8; 8] = b"CHRONSG1";

/// Fixed header length (magic + nine fixed-width fields).
pub const HEADER_LEN: usize = 84;

/// Bloom filter design load: bits per key …
const BLOOM_BITS_PER_KEY: usize = 10;
/// … and hash count, giving a false-positive rate of ~0.8 % (< 2 %).
const BLOOM_HASHES: u32 = 7;

/// The canonical file extension of a segment.
pub const SEGMENT_EXT: &str = "seg";

// ---------------------------------------------------------------------
// mmap
// ---------------------------------------------------------------------

#[cfg(unix)]
mod map {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// A read-only memory map of a whole file.
    pub struct Map {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // The mapping is read-only and the pointer is owned exclusively.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn of(file: &File, len: usize) -> io::Result<Map> {
            if len == 0 {
                return Err(io::Error::other("cannot map an empty file"));
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(not(unix))]
mod map {
    use std::fs::File;
    use std::io::{self, Read};

    /// Read-into-memory fallback where `mmap` is unavailable.
    pub struct Map {
        data: Vec<u8>,
    }

    impl Map {
        pub fn of(file: &File, len: usize) -> io::Result<Map> {
            let mut data = Vec::with_capacity(len);
            let mut file = file;
            file.read_to_end(&mut data)?;
            Ok(Map { data })
        }

        pub fn bytes(&self) -> &[u8] {
            &self.data
        }
    }
}

// ---------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn bloom_bits(key: &[u8], m_bits: u64) -> impl Iterator<Item = u64> {
    let h1 = fnv1a(key, 0xCBF2_9CE4_8422_2325);
    let h2 = fnv1a(key, 0x9E37_79B9_7F4A_7C15) | 1;
    (0..u64::from(BLOOM_HASHES)).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % m_bits)
}

fn bloom_size_bits(keys: usize) -> u64 {
    ((keys.max(1) * BLOOM_BITS_PER_KEY) as u64).next_multiple_of(64)
}

fn bloom_probe(bitmap: &[u8], m_bits: u64, key: &[u8]) -> bool {
    bloom_bits(key, m_bits).all(|bit| bitmap[(bit / 8) as usize] & (1 << (bit % 8)) != 0)
}

/// The bytes a chain is keyed by: the codec encoding of the row's first
/// attribute (empty for zero-arity tuples).
pub fn key_bytes(tuple: &Tuple) -> Vec<u8> {
    let mut buf = Vec::new();
    if let Some(v) = tuple.try_get(0) {
        put_value(&mut buf, v);
    }
    buf
}

/// Key bytes for a probe value (point lookups).
pub fn value_key_bytes(v: &Value) -> Vec<u8> {
    let mut buf = Vec::new();
    put_value(&mut buf, v);
    buf
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn encode_payload(tuple: &Tuple, validity: Validity) -> Vec<u8> {
    let mut buf = Vec::with_capacity(48);
    put_tuple(&mut buf, tuple);
    put_validity(&mut buf, validity);
    buf
}

fn full_row_encoding(row: &BitemporalRow) -> Vec<u8> {
    let mut buf = encode_payload(&row.tuple, row.validity);
    put_period(&mut buf, row.tx);
    buf
}

fn tick_floor(p: TimePoint) -> i64 {
    match p {
        TimePoint::MinusInfinity => i64::MIN,
        TimePoint::Finite(c) => c.ticks(),
        TimePoint::PlusInfinity => i64::MAX,
    }
}

/// What a freeze wrote: the segment's vital statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FreezeReport {
    /// Where the segment landed.
    pub path: PathBuf,
    /// Versions stored.
    pub versions: u64,
    /// Distinct first-attribute keys (chains).
    pub chains: u64,
    /// Segment file size.
    pub file_bytes: u64,
    /// What the same versions cost fully encoded on the heap.
    pub logical_bytes: u64,
}

/// Writes `rows` (all with finite transaction end) as a segment at
/// `path`, durably: `.tmp` sibling, fsync, rename.  Crash sites
/// `segment.write` and `segment.rename` bracket the two irreversible
/// steps.
pub fn write_segment(
    path: &Path,
    rel_id: u32,
    rows: &[BitemporalRow],
) -> StorageResult<FreezeReport> {
    if rows.is_empty() {
        return Err(StorageError::Corrupt(
            "refusing to write an empty segment".into(),
        ));
    }
    // Group into chains by key bytes, versions ordered by tx start.
    let mut chains: std::collections::BTreeMap<Vec<u8>, Vec<&BitemporalRow>> =
        std::collections::BTreeMap::new();
    let mut min_start = i64::MAX;
    let mut max_end = i64::MIN;
    for row in rows {
        if row.tx.end() == TimePoint::PlusInfinity {
            return Err(StorageError::Corrupt(
                "segment rows must have a closed transaction period".into(),
            ));
        }
        min_start = min_start.min(tick_floor(row.tx.start()));
        max_end = max_end.max(tick_floor(row.tx.end()));
        chains.entry(key_bytes(&row.tuple)).or_default().push(row);
    }
    for chain in chains.values_mut() {
        chain.sort_by_key(|r| (tick_floor(r.tx.start()), tick_floor(r.tx.end())));
    }

    // Bloom filter over chain keys.
    let m_bits = bloom_size_bits(chains.len());
    let mut bitmap = vec![0u8; (m_bits / 8) as usize];
    for key in chains.keys() {
        for bit in bloom_bits(key, m_bits) {
            bitmap[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }
    let mut bloom = Vec::with_capacity(bitmap.len() + 8);
    put_uvarint(&mut bloom, u64::from(BLOOM_HASHES));
    put_uvarint(&mut bloom, m_bits);
    bloom.extend_from_slice(&bitmap);

    // Body: delta-encoded chains; directory records each chain's offset.
    let mut body = Vec::new();
    let mut dir = Vec::new();
    let mut logical = 0u64;
    let mut priced_delta = 0u64;
    for (key, chain) in &chains {
        put_bytes(&mut dir, key);
        put_uvarint(&mut dir, body.len() as u64);
        put_uvarint(&mut body, chain.len() as u64);
        let mut prev_payload: Option<Vec<u8>> = None;
        let mut prev_full: Option<Vec<u8>> = None;
        for row in chain {
            let payload = encode_payload(&row.tuple, row.validity);
            let full = full_row_encoding(row);
            logical += full.len() as u64;
            priced_delta += match &prev_full {
                Some(p) => (full.len() - crate::table::shared_bytes(p, &full)) as u64,
                None => full.len() as u64,
            };
            match &prev_payload {
                None => put_bytes(&mut body, &payload),
                Some(prev) => {
                    let max = prev.len().min(payload.len());
                    let prefix = prev
                        .iter()
                        .zip(payload.iter())
                        .take_while(|(a, b)| a == b)
                        .count();
                    let suffix = prev
                        .iter()
                        .rev()
                        .zip(payload.iter().rev())
                        .take_while(|(a, b)| a == b)
                        .count()
                        .min(max - prefix);
                    put_uvarint(&mut body, prefix as u64);
                    put_uvarint(&mut body, suffix as u64);
                    put_bytes(&mut body, &payload[prefix..payload.len() - suffix]);
                }
            }
            prev_payload = Some(payload);
            prev_full = Some(full);
        }
        // Coalesced transaction periods: all but the first store only
        // their end point when they abut the predecessor.
        let mut prev_end: Option<TimePoint> = None;
        for row in chain {
            match prev_end {
                None => put_period(&mut body, row.tx),
                Some(end) if end == row.tx.start() => {
                    body.push(0);
                    put_timepoint(&mut body, row.tx.end());
                }
                Some(_) => {
                    body.push(1);
                    put_period(&mut body, row.tx);
                }
            }
            prev_end = Some(row.tx.end());
        }
    }

    // Assemble: header ++ bloom ++ directory ++ body ++ crc.
    let mut out = Vec::with_capacity(HEADER_LEN + bloom.len() + dir.len() + body.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&rel_id.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    out.extend_from_slice(&(chains.len() as u64).to_le_bytes());
    out.extend_from_slice(&min_start.to_le_bytes());
    out.extend_from_slice(&max_end.to_le_bytes());
    out.extend_from_slice(&logical.to_le_bytes());
    out.extend_from_slice(&priced_delta.to_le_bytes());
    out.extend_from_slice(&(bloom.len() as u64).to_le_bytes());
    out.extend_from_slice(&(dir.len() as u64).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&bloom);
    out.extend_from_slice(&dir);
    out.extend_from_slice(&body);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());

    crate::fault::crash_point("segment.write")?;
    let tmp = path.with_extension("seg.tmp");
    {
        let mut f = File::create(&tmp)?;
        std::io::Write::write_all(&mut f, &out)?;
        f.sync_all()?;
    }
    crate::fault::crash_point("segment.rename")?;
    std::fs::rename(&tmp, path)?;

    Ok(FreezeReport {
        path: path.to_path_buf(),
        versions: rows.len() as u64,
        chains: chains.len() as u64,
        file_bytes: out.len() as u64,
        logical_bytes: logical,
    })
}

// ---------------------------------------------------------------------
// Validation (shared by open and the offline doctor)
// ---------------------------------------------------------------------

/// A validated segment's summary, as the doctor reports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentCheck {
    /// Relation id stamped in the header.
    pub rel_id: u32,
    /// Versions stored.
    pub versions: u64,
    /// Chains (distinct keys).
    pub chains: u64,
}

fn le_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

fn le_i64(data: &[u8], at: usize) -> i64 {
    i64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

/// Structurally validates a whole segment image: magic, checksum,
/// section bounds, every chain's deltas, periods and payload decodes.
/// On corruption returns `(byte offset, message)` — the contract the
/// doctor's exit code 2 reports.
pub fn check_bytes(data: &[u8]) -> Result<SegmentCheck, (u64, String)> {
    if data.len() < HEADER_LEN + 4 {
        return Err((data.len() as u64, "truncated segment header".into()));
    }
    if &data[..8] != MAGIC {
        return Err((0, "bad segment magic".into()));
    }
    let crc_off = data.len() - 4;
    let stored = u32::from_le_bytes(data[crc_off..].try_into().expect("4 bytes"));
    let actual = crc32(&data[..crc_off]);
    if stored != actual {
        return Err((
            crc_off as u64,
            format!("checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"),
        ));
    }
    let rel_id = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    let versions = le_u64(data, 12);
    let chain_count = le_u64(data, 20);
    let min_start = le_i64(data, 28);
    let max_end = le_i64(data, 36);
    let bloom_len = le_u64(data, 60) as usize;
    let dir_len = le_u64(data, 68) as usize;
    let body_len = le_u64(data, 76) as usize;
    let expect = HEADER_LEN
        .checked_add(bloom_len)
        .and_then(|n| n.checked_add(dir_len))
        .and_then(|n| n.checked_add(body_len))
        .and_then(|n| n.checked_add(4));
    if expect != Some(data.len()) {
        return Err((44, "section lengths disagree with file size".into()));
    }
    if versions > 0 && (min_start >= max_end || max_end == i64::MAX) {
        return Err((28, "implausible transaction-time range".into()));
    }

    // A reader over the checksummed region keeps every error's offset
    // absolute in the file.
    let mut r = Reader::new(&data[..crc_off]);
    let fail = |e: StorageError| -> (u64, String) {
        match e {
            StorageError::Corrupt(msg) => {
                let off = msg
                    .rsplit("at offset ")
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(0);
                (off, msg)
            }
            other => (0, other.to_string()),
        }
    };
    r.skip(HEADER_LEN).map_err(fail)?;

    // Bloom section.
    let bloom_start = crc_off - body_len - dir_len - bloom_len;
    let k = r.get_uvarint().map_err(fail)?;
    let m_bits = r.get_uvarint().map_err(fail)?;
    if k == 0 || m_bits == 0 || !m_bits.is_multiple_of(8) {
        return Err((bloom_start as u64, "malformed bloom parameters".into()));
    }
    let consumed = crc_off - r.remaining() - bloom_start;
    if consumed + (m_bits / 8) as usize != bloom_len {
        return Err((bloom_start as u64, "bloom bitmap length mismatch".into()));
    }
    r.skip((m_bits / 8) as usize).map_err(fail)?;

    // Directory: keys strictly ascending, offsets within the body.
    let dir_start = bloom_start + bloom_len;
    let body_start = dir_start + dir_len;
    let mut prev_key: Option<Vec<u8>> = None;
    let mut offsets = Vec::with_capacity(chain_count as usize);
    for _ in 0..chain_count {
        if crc_off - r.remaining() >= dir_start + dir_len {
            return Err((dir_start as u64, "directory overruns its section".into()));
        }
        let key = r.get_bytes().map_err(fail)?.to_vec();
        let off = r.get_uvarint().map_err(fail)? as usize;
        if off >= body_len.max(1) {
            return Err(((dir_start) as u64, "chain offset beyond body".into()));
        }
        if let Some(prev) = &prev_key {
            if *prev >= key {
                return Err((
                    dir_start as u64,
                    "directory keys not strictly ascending".into(),
                ));
            }
        }
        prev_key = Some(key);
        offsets.push(off);
    }
    if crc_off - r.remaining() != body_start {
        return Err((dir_start as u64, "directory length mismatch".into()));
    }

    // Body: decode every chain completely.
    let mut total_versions = 0u64;
    for (i, off) in offsets.iter().enumerate() {
        let at = crc_off - r.remaining() - body_start;
        if at != *off {
            return Err((
                (body_start + at) as u64,
                format!("chain {i} starts at body offset {at}, directory says {off}"),
            ));
        }
        let n = decode_chain_structure(&mut r).map_err(fail)?;
        total_versions += n;
    }
    if !r.is_exhausted() {
        return Err((
            (crc_off - r.remaining()) as u64,
            "trailing bytes after last chain".into(),
        ));
    }
    if total_versions != versions {
        return Err((
            12,
            format!("header says {versions} versions, body holds {total_versions}"),
        ));
    }
    Ok(SegmentCheck {
        rel_id,
        versions,
        chains: chain_count,
    })
}

/// Decodes one chain (payloads and periods) purely for validation,
/// returning its version count.
fn decode_chain_structure(r: &mut Reader<'_>) -> StorageResult<u64> {
    let n = r.get_uvarint()?;
    if n == 0 {
        return Err(StorageError::Corrupt("empty chain".into()));
    }
    let mut prev: Vec<u8> = r.get_bytes()?.to_vec();
    decode_payload(&prev)?;
    for _ in 1..n {
        let prefix = r.get_uvarint()? as usize;
        let suffix = r.get_uvarint()? as usize;
        let mid = r.get_bytes()?;
        if prefix + suffix > prev.len() {
            return Err(StorageError::Corrupt(
                "delta prefix+suffix exceed predecessor".into(),
            ));
        }
        let mut cur = Vec::with_capacity(prefix + mid.len() + suffix);
        cur.extend_from_slice(&prev[..prefix]);
        cur.extend_from_slice(mid);
        cur.extend_from_slice(&prev[prev.len() - suffix..]);
        decode_payload(&cur)?;
        prev = cur;
    }
    let mut prev_end = {
        let p = get_period(r)?;
        p.end()
    };
    for _ in 1..n {
        match r.get_u8()? {
            0 => {
                let end = get_timepoint(r)?;
                let p = Period::new(prev_end, end)
                    .ok_or_else(|| StorageError::Corrupt("non-abutting coalesced period".into()))?;
                prev_end = p.end();
            }
            1 => {
                prev_end = get_period(r)?.end();
            }
            t => return Err(StorageError::Corrupt(format!("unknown period flag {t}"))),
        }
    }
    Ok(n)
}

fn decode_payload(bytes: &[u8]) -> StorageResult<(Tuple, Validity)> {
    let mut r = Reader::new(bytes);
    let tuple = get_tuple(&mut r)?;
    let validity = get_validity(&mut r)?;
    if !r.is_exhausted() {
        return Err(StorageError::Corrupt(
            "trailing bytes after chain payload".into(),
        ));
    }
    Ok((tuple, validity))
}

// ---------------------------------------------------------------------
// Segment (the mapped, read-only form)
// ---------------------------------------------------------------------

struct ChainRef {
    /// Key bytes, as absolute offsets into the map.
    key: std::ops::Range<usize>,
    /// Absolute offset of the chain body.
    body: usize,
}

/// Physical statistics of one segment, for `sys$pages` and T16.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentStats {
    /// Versions stored.
    pub versions: u64,
    /// Chains (distinct first-attribute keys).
    pub chains: u64,
    /// Whole file size on disk.
    pub file_bytes: u64,
    /// Directory + body bytes: the payload the segment actually stores.
    pub stored_bytes: u64,
    /// What the same versions cost fully encoded on the heap.
    pub logical_bytes: u64,
    /// Stored payload per 1000 bytes of the ideal prefix/suffix delta
    /// encoding — the segment's duplication factor, comparable with the
    /// heap's (`PhysicalStats::dup_factor_x1000`); near 1000 by
    /// construction.
    pub dup_factor_x1000: u64,
    /// `file_bytes / versions`.
    pub bytes_per_version: u64,
}

/// An immutable, mmap-backed segment of frozen history.
pub struct Segment {
    map: map::Map,
    path: PathBuf,
    rel_id: u32,
    versions: u64,
    min_start: i64,
    max_end: i64,
    logical_bytes: u64,
    priced_delta: u64,
    bloom_k: u32,
    bloom_m: u64,
    bloom_bitmap: std::ops::Range<usize>,
    dir_len: usize,
    body_len: usize,
    chains: Vec<ChainRef>,
}

impl Segment {
    /// Maps and validates the segment at `path`.  Crash site
    /// `segment.mmap_open` guards the map call; a segment that fails
    /// validation is never attached.
    pub fn open(path: &Path) -> StorageResult<Segment> {
        crate::fault::crash_point("segment.mmap_open")?;
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        let map = map::Map::of(&file, len)?;
        let data = map.bytes();
        check_bytes(data).map_err(|(off, msg)| {
            StorageError::Corrupt(format!("segment {}: {msg} at offset {off}", path.display()))
        })?;
        let rel_id = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        let versions = le_u64(data, 12);
        let chain_count = le_u64(data, 20) as usize;
        let min_start = le_i64(data, 28);
        let max_end = le_i64(data, 36);
        let logical_bytes = le_u64(data, 44);
        let priced_delta = le_u64(data, 52);
        let bloom_len = le_u64(data, 60) as usize;
        let dir_len = le_u64(data, 68) as usize;
        let body_len = le_u64(data, 76) as usize;

        let mut r = Reader::new(&data[..data.len() - 4]);
        r.skip(HEADER_LEN)?;
        let bloom_k = r.get_uvarint()? as u32;
        let bloom_m = r.get_uvarint()?;
        let bitmap_start = data.len() - 4 - r.remaining();
        let bloom_bitmap = bitmap_start..bitmap_start + (bloom_m / 8) as usize;
        r.skip((bloom_m / 8) as usize)?;

        let dir_start = HEADER_LEN + bloom_len;
        let body_start = dir_start + dir_len;
        let mut chains = Vec::with_capacity(chain_count);
        for _ in 0..chain_count {
            let key_len = r.get_bytes()?.len();
            let key_end = data.len() - 4 - r.remaining();
            let body_off = r.get_uvarint()? as usize;
            chains.push(ChainRef {
                key: key_end - key_len..key_end,
                body: body_start + body_off,
            });
        }
        Ok(Segment {
            map,
            path: path.to_path_buf(),
            rel_id,
            versions,
            min_start,
            max_end,
            logical_bytes,
            priced_delta,
            bloom_k,
            bloom_m,
            bloom_bitmap,
            dir_len,
            body_len,
            chains,
        })
    }

    /// The file this segment is mapped from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Relation id stamped in the header.
    pub fn rel_id(&self) -> u32 {
        self.rel_id
    }

    /// Versions stored.
    pub fn versions(&self) -> u64 {
        self.versions
    }

    /// Chains (distinct first-attribute keys).
    pub fn chains(&self) -> u64 {
        self.chains.len() as u64
    }

    /// The segment's transaction-time coverage: `[min start, max end)`
    /// in ticks.  An as-of at `t` outside this window cannot match any
    /// stored version — the caller skips the whole segment.
    pub fn covers(&self, t: Chronon) -> bool {
        self.min_start <= t.ticks() && t.ticks() < self.max_end
    }

    /// True when the window `[w]` overlaps the segment's coverage.
    pub fn covers_window(&self, w: Period) -> bool {
        let seg = Period::clamped(
            if self.min_start == i64::MIN {
                TimePoint::MinusInfinity
            } else {
                TimePoint::at(Chronon::new(self.min_start))
            },
            TimePoint::at(Chronon::new(self.max_end)),
        );
        seg.overlaps(w)
    }

    /// Bloom-filter membership probe over key bytes — no map body
    /// access, no tuple materialisation.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        debug_assert_eq!(self.bloom_k, BLOOM_HASHES);
        bloom_probe(
            &self.map.bytes()[self.bloom_bitmap.clone()],
            self.bloom_m,
            key,
        )
    }

    /// Finds the chain holding `key`, comparing raw key bytes in the
    /// directory (zero-copy).  `None` after a positive bloom probe is a
    /// false positive.
    pub fn find_chain(&self, key: &[u8]) -> Option<usize> {
        let data = self.map.bytes();
        self.chains
            .binary_search_by(|c| data[c.key.clone()].cmp(key))
            .ok()
    }

    /// Decodes one chain into full bitemporal rows.
    pub fn chain_rows(&self, idx: usize) -> StorageResult<Vec<BitemporalRow>> {
        let chain = &self.chains[idx];
        let data = self.map.bytes();
        let mut r = Reader::new(&data[chain.body..data.len() - 4]);
        decode_chain(&mut r)
    }

    /// Decodes every chain, in directory (key) order.
    pub fn rows(&self) -> StorageResult<Vec<BitemporalRow>> {
        let mut out = Vec::with_capacity(self.versions as usize);
        for idx in 0..self.chains.len() {
            out.extend(self.chain_rows(idx)?);
        }
        Ok(out)
    }

    /// Rows of the chain at `idx` stored as of `t`.
    pub fn chain_rows_at(&self, idx: usize, t: Chronon) -> StorageResult<Vec<BitemporalRow>> {
        Ok(self
            .chain_rows(idx)?
            .into_iter()
            .filter(|row| row.tx.contains(t))
            .collect())
    }

    /// Physical statistics for `sys$pages` and the T16 experiment.
    pub fn stats(&self) -> SegmentStats {
        let stored = (self.dir_len + self.body_len) as u64;
        SegmentStats {
            versions: self.versions,
            chains: self.chains.len() as u64,
            file_bytes: self.map.bytes().len() as u64,
            stored_bytes: stored,
            logical_bytes: self.logical_bytes,
            dup_factor_x1000: (stored * 1000)
                .checked_div(self.priced_delta)
                .unwrap_or(1000),
            bytes_per_version: (self.map.bytes().len() as u64)
                .checked_div(self.versions)
                .unwrap_or(0),
        }
    }
}

/// Decodes one chain from a reader positioned at its start.
fn decode_chain(r: &mut Reader<'_>) -> StorageResult<Vec<BitemporalRow>> {
    let n = r.get_uvarint()? as usize;
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(n);
    payloads.push(r.get_bytes()?.to_vec());
    for _ in 1..n {
        let prefix = r.get_uvarint()? as usize;
        let suffix = r.get_uvarint()? as usize;
        let mid = r.get_bytes()?;
        let prev = payloads.last().expect("chain has a predecessor");
        if prefix + suffix > prev.len() {
            return Err(StorageError::Corrupt(
                "delta prefix+suffix exceed predecessor".into(),
            ));
        }
        let mut cur = Vec::with_capacity(prefix + mid.len() + suffix);
        cur.extend_from_slice(&prev[..prefix]);
        cur.extend_from_slice(mid);
        cur.extend_from_slice(&prev[prev.len() - suffix..]);
        payloads.push(cur);
    }
    let mut periods = Vec::with_capacity(n);
    periods.push(get_period(r)?);
    for _ in 1..n {
        let prev_end = periods.last().expect("period predecessor").end();
        match r.get_u8()? {
            0 => {
                let end = get_timepoint(r)?;
                periods.push(Period::new(prev_end, end).ok_or_else(|| {
                    StorageError::Corrupt("non-abutting coalesced period".into())
                })?);
            }
            1 => periods.push(get_period(r)?),
            t => return Err(StorageError::Corrupt(format!("unknown period flag {t}"))),
        }
    }
    let mut rows = Vec::with_capacity(n);
    for (payload, tx) in payloads.iter().zip(periods) {
        let (tuple, validity) = decode_payload(payload)?;
        rows.push(BitemporalRow {
            tuple,
            validity,
            tx,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::tuple::tuple;

    fn closed(t: Tuple, vs: i64, ve: i64, ts: i64, te: i64) -> BitemporalRow {
        BitemporalRow {
            tuple: t,
            validity: Validity::Interval(Period::new(Chronon::new(vs), Chronon::new(ve)).unwrap()),
            tx: Period::new(Chronon::new(ts), Chronon::new(te)).unwrap(),
        }
    }

    fn chain_rows(name: &str, n: usize) -> Vec<BitemporalRow> {
        (0..n)
            .map(|i| {
                let rank = format!("rank{i}");
                closed(
                    tuple([name, rank.as_str()]),
                    i as i64,
                    i as i64 + 100,
                    i as i64 * 10 + 1,
                    (i as i64 + 1) * 10 + 1,
                )
            })
            .collect()
    }

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chronos-seg-{tag}-{}.seg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn round_trips_chains_and_periods() {
        let mut rows = chain_rows("Merrie", 5);
        rows.extend(chain_rows("Tom", 3));
        // A gap in Tom's chain exercises the full-period flag.
        rows.push(closed(tuple(["Tom", "emeritus"]), 50, 60, 200, 300));
        let path = tmp_path("roundtrip");
        let report = write_segment(&path, 7, &rows).unwrap();
        assert_eq!(report.versions, 9);
        assert_eq!(report.chains, 2);
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.rel_id(), 7);
        assert_eq!(seg.versions(), 9);
        let mut got = seg.rows().unwrap();
        let key = |r: &BitemporalRow| (format!("{:?}", r.tuple), r.tx.start());
        got.sort_by_key(key);
        let mut want = rows.clone();
        want.sort_by_key(key);
        assert_eq!(got, want);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn skip_paths_range_bloom_and_directory() {
        let rows = chain_rows("Merrie", 4); // tx covers [1, 41)
        let path = tmp_path("skips");
        write_segment(&path, 1, &rows).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert!(seg.covers(Chronon::new(1)));
        assert!(seg.covers(Chronon::new(40)));
        assert!(!seg.covers(Chronon::new(0)));
        assert!(!seg.covers(Chronon::new(41)));
        let merrie = value_key_bytes(&Value::str("Merrie"));
        assert!(seg.may_contain(&merrie));
        assert!(seg.find_chain(&merrie).is_some());
        let ghost = value_key_bytes(&Value::str("Ghost"));
        assert!(seg.find_chain(&ghost).is_none());
        let at = seg.chain_rows_at(seg.find_chain(&merrie).unwrap(), Chronon::new(15));
        assert_eq!(at.unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rows_must_not_freeze() {
        let open_row = BitemporalRow {
            tuple: tuple(["Merrie", "full"]),
            validity: Validity::Interval(Period::ALWAYS),
            tx: Period::from_start(Chronon::new(5)),
        };
        let path = tmp_path("openrow");
        assert!(write_segment(&path, 1, &[open_row]).is_err());
    }

    #[test]
    fn corruption_is_reported_with_an_offset() {
        let rows = chain_rows("Merrie", 3);
        let path = tmp_path("corrupt");
        write_segment(&path, 1, &rows).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Checksum catches a flipped byte mid-body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = check_bytes(&bytes).unwrap_err();
        assert_eq!(err.0, bytes.len() as u64 - 4);
        assert!(err.1.contains("checksum mismatch"), "{}", err.1);
        // Truncation is caught too.
        let whole = std::fs::read(&path).unwrap();
        assert!(check_bytes(&whole[..HEADER_LEN / 2]).is_err());
        // Bad magic names offset 0.
        let mut bad = whole.clone();
        bad[0] = b'X';
        assert_eq!(check_bytes(&bad).unwrap_err().0, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn delta_encoding_stores_near_the_ideal_delta() {
        // 32-version chains of near-identical tuples: the heap pays the
        // full encoding per version, the segment pays ~one delta.
        let mut rows = Vec::new();
        for k in 0..16 {
            rows.extend(chain_rows(&format!("employee-{k:03}"), 32));
        }
        let path = tmp_path("dup");
        write_segment(&path, 1, &rows).unwrap();
        let seg = Segment::open(&path).unwrap();
        let stats = seg.stats();
        assert!(
            stats.dup_factor_x1000 <= 1300,
            "segment dup factor {} should be ≤ 1.3×",
            stats.dup_factor_x1000
        );
        assert!(stats.stored_bytes < stats.logical_bytes / 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bloom_false_positive_rate_is_bounded_at_design_load() {
        let rows: Vec<BitemporalRow> = (0..128)
            .map(|k| {
                closed(
                    tuple([format!("key-{k:04}").as_str(), "v"]),
                    0,
                    10,
                    k as i64 + 1,
                    k as i64 + 2,
                )
            })
            .collect();
        let path = tmp_path("bloom");
        write_segment(&path, 1, &rows).unwrap();
        let seg = Segment::open(&path).unwrap();
        let mut fps = 0u32;
        let probes = 5000u32;
        for i in 0..probes {
            let absent = value_key_bytes(&Value::str(&format!("absent-{i:05}")));
            if seg.may_contain(&absent) {
                fps += 1;
            }
        }
        let rate_pct = f64::from(fps) * 100.0 / f64::from(probes);
        assert!(rate_pct <= 2.0, "bloom FP rate {rate_pct:.2}% exceeds 2%");
        std::fs::remove_file(&path).unwrap();
    }
}
