//! Slotted pages.
//!
//! The unit of storage is an 8 KiB [`Page`] with the classic slotted
//! layout: a fixed header, a slot directory growing upward, and record
//! data growing downward from the end of the page.  Deleting a record
//! tombstones its slot; [`Page::compact`] reclaims the dead space.
//!
//! ```text
//! ┌────────────┬───────────────┬─────── free ───────┬───────────────┐
//! │ header 16B │ slot dir →    │                    │   ← record data│
//! └────────────┴───────────────┴────────────────────┴───────────────┘
//! ```

use bytes::{Buf, BufMut, BytesMut};

use crate::error::{StorageError, StorageResult};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Bytes of fixed header at the start of each page.
pub const HEADER_SIZE: usize = 16;
/// Bytes per slot directory entry (offset u16 + len u16).
pub const SLOT_SIZE: usize = 4;
/// Largest record a page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// Identifies a record: page number and slot index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RecordId {
    /// The page holding the record.
    pub page: u32,
    /// The slot within the page.
    pub slot: u16,
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// An 8 KiB slotted page.
#[derive(Clone, Debug)]
pub struct Page {
    buf: BytesMut,
}

impl Page {
    /// Creates an empty page with the given page number.
    pub fn new(page_no: u32) -> Page {
        let mut p = Page {
            buf: BytesMut::zeroed(PAGE_SIZE),
        };
        p.set_page_no(page_no);
        p.set_slot_count(0);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// Wraps raw page bytes read from disk.
    pub fn from_bytes(bytes: BytesMut) -> StorageResult<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page image of {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        Ok(Page { buf: bytes })
    }

    /// The raw page image (for writing to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    fn read_u16(&self, off: usize) -> u16 {
        (&self.buf[off..off + 2]).get_u16_le()
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        (&mut self.buf[off..off + 2]).put_u16_le(v);
    }

    fn read_u32(&self, off: usize) -> u32 {
        (&self.buf[off..off + 4]).get_u32_le()
    }

    fn write_u32(&mut self, off: usize, v: u32) {
        (&mut self.buf[off..off + 4]).put_u32_le(v);
    }

    /// The page's own number.
    pub fn page_no(&self) -> u32 {
        self.read_u32(0)
    }

    fn set_page_no(&mut self, v: u32) {
        self.write_u32(0, v);
    }

    /// Number of slots in the directory (live and dead).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(4)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.write_u16(4, v);
    }

    fn free_end(&self) -> u16 {
        self.read_u16(6)
    }

    fn set_free_end(&mut self, v: u16) {
        self.write_u16(6, v);
    }

    fn slot_dir_end(&self) -> usize {
        HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let off = HEADER_SIZE + slot as usize * SLOT_SIZE;
        (self.read_u16(off), self.read_u16(off + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let off = HEADER_SIZE + slot as usize * SLOT_SIZE;
        self.write_u16(off, offset);
        self.write_u16(off + 2, len);
    }

    /// Bytes available for a new record (including its slot entry).
    pub fn free_space(&self) -> usize {
        self.free_end() as usize - self.slot_dir_end()
    }

    /// True iff a record of `len` bytes fits (reusing a dead slot when
    /// one exists).
    pub fn fits(&self, len: usize) -> bool {
        let slot_cost = if self.dead_slot().is_some() {
            0
        } else {
            SLOT_SIZE
        };
        len + slot_cost <= self.free_space()
    }

    fn dead_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&s| {
            let (off, len) = self.slot_entry(s);
            off == 0 && len == 0
        })
    }

    /// Inserts a record, returning its slot.
    pub fn insert(&mut self, data: &[u8]) -> StorageResult<u16> {
        if data.len() > MAX_RECORD {
            return Err(StorageError::Corrupt(format!(
                "record of {} bytes exceeds page capacity {MAX_RECORD}",
                data.len()
            )));
        }
        if !self.fits(data.len()) {
            return Err(StorageError::PageFull {
                needed: data.len() + SLOT_SIZE,
                available: self.free_space(),
            });
        }
        // Zero-length records: store at the current free end with len 0
        // but a nonzero offset so the slot is distinguishable from dead.
        let new_end = self.free_end() as usize - data.len();
        self.buf[new_end..new_end + data.len()].copy_from_slice(data);
        self.set_free_end(new_end as u16);
        let slot = match self.dead_slot() {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        self.set_slot_entry(slot, new_end as u16, data.len() as u16);
        Ok(slot)
    }

    /// Reads the record in `slot`.
    pub fn get(&self, slot: u16) -> StorageResult<&[u8]> {
        if slot >= self.slot_count() {
            return Err(StorageError::NoSuchRecord(format!(
                "page {} slot {slot}",
                self.page_no()
            )));
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 && len == 0 {
            return Err(StorageError::NoSuchRecord(format!(
                "page {} slot {slot} (deleted)",
                self.page_no()
            )));
        }
        Ok(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Deletes the record in `slot` (tombstones the slot; space is
    /// reclaimed by [`compact`](Page::compact)).
    pub fn delete(&mut self, slot: u16) -> StorageResult<()> {
        self.get(slot)?; // validate
        self.set_slot_entry(slot, 0, 0);
        Ok(())
    }

    /// Iterates live `(slot, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).ok().map(|d| (s, d)))
    }

    /// Number of live records.
    pub fn live_records(&self) -> usize {
        self.iter().count()
    }

    /// Rewrites record data contiguously at the end of the page,
    /// reclaiming space from deleted records.  Slot numbers are stable.
    pub fn compact(&mut self) {
        let live: Vec<(u16, Vec<u8>)> = self.iter().map(|(s, d)| (s, d.to_vec())).collect();
        let mut end = PAGE_SIZE;
        for (slot, data) in &live {
            end -= data.len();
            self.buf[end..end + data.len()].copy_from_slice(data);
            self.set_slot_entry(*slot, end as u16, data.len() as u16);
        }
        self.set_free_end(end as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete() {
        let mut p = Page::new(7);
        assert_eq!(p.page_no(), 7);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        p.delete(a).unwrap();
        assert!(p.get(a).is_err());
        assert!(p.delete(a).is_err());
        assert_eq!(p.live_records(), 1);
    }

    #[test]
    fn dead_slots_are_reused() {
        let mut p = Page::new(0);
        let a = p.insert(b"one").unwrap();
        let _b = p.insert(b"two").unwrap();
        p.delete(a).unwrap();
        let c = p.insert(b"three").unwrap();
        assert_eq!(c, a, "dead slot reused");
        assert_eq!(p.get(c).unwrap(), b"three");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_up_and_reports_page_full() {
        let mut p = Page::new(0);
        let rec = vec![0xABu8; 1000];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(n >= 8, "should fit at least 8 KB-sized records, got {n}");
        let err = p.insert(&rec);
        assert!(matches!(err, Err(StorageError::PageFull { .. })));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new(0);
        assert!(p.insert(&vec![0u8; MAX_RECORD + 1]).is_err());
    }

    #[test]
    fn compact_reclaims_space() {
        let mut p = Page::new(0);
        let rec = vec![1u8; 1500];
        let slots: Vec<u16> = (0..5).map(|_| p.insert(&rec).unwrap()).collect();
        for &s in &slots[..4] {
            p.delete(s).unwrap();
        }
        let before = p.free_space();
        p.compact();
        assert!(p.free_space() > before + 4 * 1400);
        assert_eq!(p.get(slots[4]).unwrap(), &rec[..]);
        // New inserts go into reclaimed space.
        for _ in 0..4 {
            p.insert(&rec).unwrap();
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let mut p = Page::new(3);
        let s = p.insert(b"persisted").unwrap();
        let image = BytesMut::from(p.as_bytes());
        let q = Page::from_bytes(image).unwrap();
        assert_eq!(q.page_no(), 3);
        assert_eq!(q.get(s).unwrap(), b"persisted");
        assert!(Page::from_bytes(BytesMut::from(&b"short"[..])).is_err());
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut p = Page::new(0);
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b).unwrap();
        let live: Vec<u16> = p.iter().map(|(s, _)| s).collect();
        assert_eq!(live, vec![a, c]);
    }
}
