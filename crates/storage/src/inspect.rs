//! Offline, read-only WAL forensics.
//!
//! [`Wal::recover`](crate::wal::Wal::recover) answers "which records can
//! I replay?" and deliberately collapses every failure into a silent
//! stop.  The inspector answers the forensic questions recovery throws
//! away: *where* does the valid prefix end, *why* (torn tail vs. byte
//! flip vs. undecodable payload), and what does each intact frame hold.
//! It never opens a file for writing, so it is safe to point at a live
//! or corrupted database directory.
//!
//! The same walker backs three consumers — the `sys$wal` system
//! relation, the `/wal` exporter endpoint, and `chronos --inspect` — so
//! live and offline views agree by construction on a quiesced log.

use std::path::Path;

use crate::codec::crc32;
use crate::error::StorageResult;
use crate::wal::{decode_record, WalRecord};

/// One intact WAL frame, as found on disk.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameInfo {
    /// Byte offset of the frame header (`len` field) in the file.
    pub offset: u64,
    /// Whole frame length: 8-byte header plus payload.
    pub frame_len: u64,
    /// Relation the logged transaction applies to.
    pub rel_id: u32,
    /// Commit (transaction) time, in clock ticks — the frame's LSN.
    pub tx_ticks: i64,
    /// Operations in the frame, by kind.
    pub insert_ops: u64,
    pub remove_ops: u64,
    pub set_validity_ops: u64,
}

impl FrameInfo {
    /// Total operations in the frame.
    pub fn ops(&self) -> u64 {
        self.insert_ops + self.remove_ops + self.set_validity_ops
    }

    /// The frame's class: which kind of operation it carries
    /// (`"insert"`, `"remove"`, `"set_validity"`, `"mixed"`, or
    /// `"empty"`).
    pub fn class(&self) -> &'static str {
        let kinds = [self.insert_ops, self.remove_ops, self.set_validity_ops]
            .iter()
            .filter(|&&n| n > 0)
            .count();
        match kinds {
            0 => "empty",
            1 if self.insert_ops > 0 => "insert",
            1 if self.remove_ops > 0 => "remove",
            1 => "set_validity",
            _ => "mixed",
        }
    }
}

/// Why (and where) the walk stopped before the end of the file.
#[derive(Clone, Debug, PartialEq)]
pub enum TailState {
    /// Every byte belongs to an intact frame.
    Clean,
    /// The final frame is incomplete: fewer bytes remain at `offset`
    /// than its header (or length field) promises.  The classic
    /// crash-mid-append tear; recovery truncates it silently.
    Torn { offset: u64, bytes: u64 },
    /// A complete frame at `offset` fails its CRC or does not decode —
    /// a byte flip, not a tear.  Everything after is unreadable because
    /// framing is lost.
    Corrupt {
        offset: u64,
        bytes: u64,
        reason: String,
    },
}

impl TailState {
    /// Short machine-friendly label (`clean` / `torn` / `corrupt`).
    pub fn label(&self) -> &'static str {
        match self {
            TailState::Clean => "clean",
            TailState::Torn { .. } => "torn",
            TailState::Corrupt { .. } => "corrupt",
        }
    }

    /// Offset where the damage starts, if any.
    pub fn offset(&self) -> Option<u64> {
        match self {
            TailState::Clean => None,
            TailState::Torn { offset, .. } | TailState::Corrupt { offset, .. } => Some(*offset),
        }
    }

    /// Bytes rendered unusable by the damage, if any.
    pub fn bad_bytes(&self) -> u64 {
        match self {
            TailState::Clean => 0,
            TailState::Torn { bytes, .. } | TailState::Corrupt { bytes, .. } => *bytes,
        }
    }
}

/// The full result of a frame-by-frame WAL walk.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact frame, in file order.
    pub frames: Vec<FrameInfo>,
    /// Offset at which the intact prefix ends.
    pub valid_len: u64,
    /// Total file length in bytes.
    pub total_len: u64,
    /// What lies beyond the intact prefix.
    pub tail: TailState,
}

impl WalScan {
    /// Total operations across all intact frames, as
    /// `(inserts, removes, set_validities)`.
    pub fn op_totals(&self) -> (u64, u64, u64) {
        self.frames.iter().fold((0, 0, 0), |(i, r, s), f| {
            (i + f.insert_ops, r + f.remove_ops, s + f.set_validity_ops)
        })
    }

    /// LSN (tx-time tick) range over the intact frames, `(first, last)`.
    pub fn lsn_range(&self) -> Option<(i64, i64)> {
        let first = self.frames.first()?.tx_ticks;
        let last = self.frames.last()?.tx_ticks;
        Some((first, last))
    }

    /// Per-class `(class, frames, bytes)` aggregates over the intact
    /// frames, in a stable order.
    pub fn classes(&self) -> Vec<(&'static str, u64, u64)> {
        let mut out: Vec<(&'static str, u64, u64)> = Vec::new();
        for class in ["insert", "remove", "set_validity", "mixed", "empty"] {
            let (n, bytes) = self
                .frames
                .iter()
                .filter(|f| f.class() == class)
                .fold((0u64, 0u64), |(n, b), f| (n + 1, b + f.frame_len));
            if n > 0 {
                out.push((class, n, bytes));
            }
        }
        out
    }

    /// True iff the whole file is intact frames.
    pub fn is_clean(&self) -> bool {
        matches!(self.tail, TailState::Clean)
    }
}

fn frame_info(offset: u64, frame_len: u64, rec: &WalRecord) -> FrameInfo {
    use chronos_core::relation::HistoricalOp;
    let mut info = FrameInfo {
        offset,
        frame_len,
        rel_id: rec.rel_id,
        tx_ticks: rec.tx_time.ticks(),
        insert_ops: 0,
        remove_ops: 0,
        set_validity_ops: 0,
    };
    for op in &rec.ops {
        match op {
            HistoricalOp::Insert { .. } => info.insert_ops += 1,
            HistoricalOp::Remove { .. } => info.remove_ops += 1,
            HistoricalOp::SetValidity { .. } => info.set_validity_ops += 1,
        }
    }
    info
}

/// Walks a WAL image frame by frame, validating lengths and checksums,
/// without interpreting the records beyond op classification.
pub fn scan_wal_bytes(data: &[u8]) -> WalScan {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let tail = loop {
        let remaining = data.len() - pos;
        if remaining == 0 {
            break TailState::Clean;
        }
        if remaining < 8 {
            break TailState::Torn {
                offset: pos as u64,
                bytes: remaining as u64,
            };
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if remaining - 8 < len {
            break TailState::Torn {
                offset: pos as u64,
                bytes: remaining as u64,
            };
        }
        let payload = &data[pos + 8..pos + 8 + len];
        let actual_crc = crc32(payload);
        if actual_crc != stored_crc {
            break TailState::Corrupt {
                offset: pos as u64,
                bytes: remaining as u64,
                reason: format!(
                    "checksum mismatch in frame at offset {pos}: \
                     stored {stored_crc:#010x}, computed {actual_crc:#010x}"
                ),
            };
        }
        match decode_record(payload) {
            Ok(rec) => frames.push(frame_info(pos as u64, 8 + len as u64, &rec)),
            Err(e) => {
                break TailState::Corrupt {
                    offset: pos as u64,
                    bytes: remaining as u64,
                    reason: format!(
                        "frame at offset {pos} passes its checksum but does not decode: {e}"
                    ),
                }
            }
        }
        pos += 8 + len;
    };
    WalScan {
        valid_len: pos as u64,
        total_len: data.len() as u64,
        frames,
        tail,
    }
}

/// Reads and walks the WAL at `path` (read-only; a missing file scans
/// as an empty, clean log).
pub fn scan_wal(path: &Path) -> StorageResult<WalScan> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    Ok(scan_wal_bytes(&data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, Wal};
    use chronos_core::chronon::Chronon;
    use chronos_core::period::Period;
    use chronos_core::relation::{HistoricalOp, RowSelector};
    use chronos_core::tuple::tuple;

    fn frame_bytes(rec: &WalRecord) -> Vec<u8> {
        let payload = encode_record(rec);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord {
                rel_id: 1,
                tx_time: Chronon::new(100),
                ops: vec![HistoricalOp::insert(
                    tuple(["Merrie", "associate"]),
                    Period::from_start(Chronon::new(90)),
                )],
            },
            WalRecord {
                rel_id: 1,
                tx_time: Chronon::new(110),
                ops: vec![
                    HistoricalOp::remove(RowSelector::tuple(tuple(["Merrie", "associate"]))),
                    HistoricalOp::insert(
                        tuple(["Merrie", "full"]),
                        Period::from_start(Chronon::new(105)),
                    ),
                ],
            },
            WalRecord {
                rel_id: 2,
                tx_time: Chronon::new(120),
                ops: vec![HistoricalOp::set_validity(
                    RowSelector::exact(
                        tuple(["Mike", "assistant"]),
                        Period::from_start(Chronon::new(80)),
                    ),
                    Period::new(Chronon::new(80), Chronon::new(118)).unwrap(),
                )],
            },
        ]
    }

    fn image(recs: &[WalRecord]) -> Vec<u8> {
        recs.iter().flat_map(|r| frame_bytes(r)).collect()
    }

    #[test]
    fn clean_log_scans_clean_with_frame_details() {
        let data = image(&sample());
        let scan = scan_wal_bytes(&data);
        assert!(scan.is_clean());
        assert_eq!(scan.valid_len, data.len() as u64);
        assert_eq!(scan.total_len, data.len() as u64);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0].offset, 0);
        assert_eq!(scan.frames[0].class(), "insert");
        assert_eq!(scan.frames[1].class(), "mixed");
        assert_eq!(scan.frames[2].class(), "set_validity");
        assert_eq!(scan.op_totals(), (2, 1, 1));
        assert_eq!(scan.lsn_range(), Some((100, 120)));
        let bytes: u64 = scan.frames.iter().map(|f| f.frame_len).sum();
        assert_eq!(bytes, data.len() as u64);
        let classed: u64 = scan.classes().iter().map(|(_, n, _)| n).sum();
        assert_eq!(classed, 3);
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = scan_wal_bytes(&[]);
        assert!(scan.is_clean());
        assert!(scan.frames.is_empty());
        assert_eq!(scan.lsn_range(), None);
    }

    #[test]
    fn torn_tail_is_reported_with_its_offset() {
        let mut data = image(&sample());
        let valid = data.len() as u64;
        // A partial frame: plausible header, missing payload bytes.
        data.extend_from_slice(&[0x55, 0x02, 0x00, 0x00, 0xAA]);
        let scan = scan_wal_bytes(&data);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.valid_len, valid);
        assert_eq!(
            scan.tail,
            TailState::Torn {
                offset: valid,
                bytes: 5
            }
        );
        assert_eq!(scan.tail.label(), "torn");
        assert_eq!(scan.tail.offset(), Some(valid));
    }

    #[test]
    fn mid_file_byte_flip_is_corrupt_not_torn() {
        let recs = sample();
        let mut data = image(&recs);
        // Flip a payload byte inside the second frame.
        let second = frame_bytes(&recs[0]).len();
        data[second + 10] ^= 0xFF;
        let scan = scan_wal_bytes(&data);
        assert_eq!(scan.frames.len(), 1, "walk stops at the flipped frame");
        assert_eq!(scan.valid_len, second as u64);
        match &scan.tail {
            TailState::Corrupt {
                offset,
                bytes,
                reason,
            } => {
                assert_eq!(*offset, second as u64);
                assert_eq!(*bytes, (data.len() - second) as u64);
                assert!(reason.contains("checksum mismatch"), "{reason}");
                assert!(reason.contains(&format!("offset {second}")), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn scan_agrees_with_recovery_on_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("chronos-inspect-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        let recovered = Wal::recover(&path).unwrap();
        assert_eq!(scan.frames.len(), recovered.records.len());
        assert_eq!(scan.valid_len, recovered.valid_len);
        assert!(scan.is_clean());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_scans_as_empty() {
        let mut path = std::env::temp_dir();
        path.push(format!("chronos-inspect-missing-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.is_clean());
        assert_eq!(scan.total_len, 0);
    }
}
