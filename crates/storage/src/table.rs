//! The storage-backed temporal relation.
//!
//! [`StoredBitemporalTable`] is the production implementation of the
//! paper's temporal relation: rows live in a slotted-page [`HeapFile`],
//! every commit is logically logged to a [`Wal`] before being applied
//! (write-ahead rule), and three access paths accelerate the taxonomy's
//! characteristic queries:
//!
//! * a **transaction-time interval tree** — the rollback operation
//!   (`as of t`) is a stabbing query;
//! * a **valid-time interval tree** — historical timeslices
//!   (`valid at t`) are stabbing queries;
//! * a **current-version map** — modifications address rows of the
//!   current historical state by content;
//! * a **checkpoint list** — every K commits the current historical
//!   state is materialised, so `as of t` binary-searches the checkpoint
//!   list and replays at most K−1 delta transactions instead of
//!   touching every row ever stored (experiment E14b sweeps K);
//! * a **morsel-driven parallel scan** — above a row-count threshold,
//!   full scans and index-probe materialisations fan out over scoped
//!   threads, one heap page (or record-id chunk) per morsel, with
//!   byte-identical output order to the sequential path.
//!
//! Semantics are defined by `chronos-core`'s reference stores: every
//! commit is validated against an in-memory mirror of the current
//! historical state using exactly the reference transition rules, so the
//! stored table is observationally equivalent to
//! [`SnapshotTemporal`](chronos_core::relation::temporal::SnapshotTemporal)
//! and [`BitemporalTable`](chronos_core::relation::temporal::BitemporalTable)
//! by construction — and differentially tested to be.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use chronos_core::value::Value;

use chronos_core::chronon::Chronon;
use chronos_core::error::CoreError;
use chronos_core::period::Period;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::relation::temporal::{BitemporalRow, TemporalStore};
use chronos_core::relation::{HistoricalOp, Validity};
use chronos_core::schema::{Schema, TemporalSignature};
use chronos_core::timepoint::TimePoint;
use chronos_core::tuple::Tuple;
use chronos_obs::Recorder;

use crate::codec::{
    get_period, get_tuple, get_validity, put_period, put_tuple, put_validity, Reader,
};
use crate::error::{StorageError, StorageResult};
use crate::heap::HeapFile;
use crate::index::IntervalTree;
use crate::page::RecordId;
use crate::pager::{BufferPool, MemPager, PageStore};
use crate::segment::{self, FreezeReport, Segment};
use crate::wal::{Wal, WalRecord};

fn encode_row(tuple: &Tuple, validity: Validity, tx: Period) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_tuple(&mut buf, tuple);
    put_validity(&mut buf, validity);
    put_period(&mut buf, tx);
    buf
}

fn decode_row(bytes: &[u8]) -> StorageResult<BitemporalRow> {
    let mut r = Reader::new(bytes);
    let tuple = get_tuple(&mut r)?;
    let validity = get_validity(&mut r)?;
    let tx = get_period(&mut r)?;
    if !r.is_exhausted() {
        return Err(StorageError::Corrupt("trailing bytes after row".into()));
    }
    Ok(BitemporalRow {
        tuple,
        validity,
        tx,
    })
}

/// Physical storage statistics for one table, measured by walking the
/// heap (see [`StoredBitemporalTable::physical_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhysicalStats {
    /// Heap pages allocated.
    pub pages: u32,
    /// Pages × 8 KiB: what the heap costs on disk (or in the pager).
    pub bytes_on_disk: u64,
    /// Live record count — every stored version of every row.
    pub versions: u64,
    /// Bytes of live record payload across all pages.
    pub occupied_bytes: u64,
    /// Payload bytes per 1000 bytes on disk (page occupancy, permille).
    pub occupancy_x1000: u64,
    /// `bytes_on_disk / versions`: the all-in physical cost of storing
    /// one version.
    pub bytes_per_version: u64,
    /// Measured version duplication, ×1000.  Each version is priced at
    /// (its encoded length − bytes shared with the previous version of
    /// the same key), where *shared* is the common prefix plus common
    /// suffix — a cheap stand-in for a delta encoding.  The factor is
    /// `occupied_bytes × 1000 / Σ delta`: 1000 means versions share
    /// nothing; 3000 means two of every three stored bytes repeat the
    /// previous version — the "excessive duplication" the paper warns
    /// rollback stores pay for.
    pub dup_factor_x1000: u64,
}

/// Bytes a prefix/suffix delta encoding of `b` against `a` would not
/// need to store: the longest common prefix plus the longest common
/// suffix of the remainder, capped at the shorter length.
pub(crate) fn shared_bytes(a: &[u8], b: &[u8]) -> usize {
    let max = a.len().min(b.len());
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count()
        .min(max - prefix);
    prefix + suffix
}

/// Default checkpoint interval: one materialised state every K commits.
pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 64;

/// Default row count below which scans stay sequential (thread spawn
/// and morsel bookkeeping cost more than they save on small tables).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

/// Upper bound on scan workers; morsels are claimed dynamically so
/// stragglers self-balance.
const MAX_SCAN_WORKERS: usize = 8;

fn worker_count(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_SCAN_WORKERS)
        .min(tasks.max(1))
}

/// A durable, index-accelerated temporal relation.
pub struct StoredBitemporalTable<S: PageStore = MemPager> {
    schema: Schema,
    signature: TemporalSignature,
    rel_id: u32,
    heap: HeapFile<S>,
    wal: Option<Wal>,
    /// Mirror of the current historical state (reference semantics).
    current: HistoricalRelation,
    /// Record ids of current rows, addressed by content.
    current_rids: HashMap<(Tuple, Validity), Vec<RecordId>>,
    /// Transaction-time periods of every row.
    tx_index: IntervalTree<RecordId>,
    /// Valid-time periods of every row.
    valid_index: IntervalTree<RecordId>,
    last_commit: Option<Chronon>,
    transactions: usize,
    /// Every committed transaction, in commit order (rollback replays
    /// a suffix of this after the nearest checkpoint).
    commit_log: Vec<(Chronon, Vec<HistoricalOp>)>,
    /// `(commits covered, state after them)`, ascending.
    checkpoints: Vec<(usize, HistoricalRelation)>,
    checkpoint_every: usize,
    parallel_threshold: usize,
    /// Frozen history: immutable, delta-encoded, mmap-backed segments
    /// holding versions whose transaction period is wholly past.  The
    /// heap keeps only the mutable tail; reads merge both.  Segments
    /// are a rebuildable cache — the WAL and checkpoint images alone
    /// reconstruct every row, so losing one is never lossy.
    segments: Vec<Arc<Segment>>,
    /// Engine instruments and trace spans; a disabled recorder until
    /// the owning `Database` (or a test) hands down a live one.
    recorder: Arc<Recorder>,
}

impl StoredBitemporalTable<MemPager> {
    /// Creates a fresh in-memory table (no durability).
    pub fn in_memory(schema: Schema, signature: TemporalSignature) -> Self {
        let heap = HeapFile::open(BufferPool::new(MemPager::new(), 64))
            .expect("empty in-memory heap opens");
        StoredBitemporalTable {
            current: HistoricalRelation::new(schema.clone(), signature),
            schema,
            signature,
            rel_id: 0,
            heap,
            wal: None,
            current_rids: HashMap::new(),
            tx_index: IntervalTree::new(),
            valid_index: IntervalTree::new(),
            last_commit: None,
            transactions: 0,
            commit_log: Vec::new(),
            checkpoints: Vec::new(),
            checkpoint_every: DEFAULT_CHECKPOINT_INTERVAL,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            segments: Vec::new(),
            recorder: Arc::new(Recorder::disabled()),
        }
    }

    /// Opens a durable table whose state is the replay of the write-ahead
    /// log at `wal_path` (records for other relations are ignored).  A
    /// torn tail left by a crash is truncated.
    pub fn open_durable(
        wal_path: &Path,
        rel_id: u32,
        schema: Schema,
        signature: TemporalSignature,
    ) -> StorageResult<Self> {
        let recovered = Wal::truncate_torn_tail(wal_path)?;
        let mut table = StoredBitemporalTable::in_memory(schema, signature);
        table.rel_id = rel_id;
        for rec in &recovered.records {
            if rec.rel_id != rel_id {
                continue;
            }
            table
                .commit_internal(rec.tx_time, &rec.ops, false)
                .map_err(|e| {
                    StorageError::Corrupt(format!("log replay failed at tx {}: {e}", rec.tx_time))
                })?;
        }
        table.wal = Some(Wal::open(wal_path)?);
        Ok(table)
    }
}

impl<S: PageStore> StoredBitemporalTable<S> {
    /// The relation id used in the shared log.
    pub fn rel_id(&self) -> u32 {
        self.rel_id
    }

    /// Routes this table's instruments (access-path spans, rollback
    /// replay counts, scan morsels, pager and WAL I/O) into `recorder`.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.heap.pool().set_recorder(Arc::clone(&recorder));
        if let Some(wal) = &mut self.wal {
            wal.set_recorder(Arc::clone(&recorder));
        }
        self.recorder = recorder;
    }

    /// Reconstructs a table from checkpointed rows, rebuilding the heap,
    /// both interval trees, the current-version map, and the current
    /// historical state (whose duplicate checks validate the rows).
    pub fn from_rows(
        schema: Schema,
        signature: TemporalSignature,
        rows: Vec<BitemporalRow>,
        last_commit: Option<Chronon>,
        transactions: usize,
    ) -> StorageResult<StoredBitemporalTable<MemPager>> {
        let mut table = StoredBitemporalTable::in_memory(schema, signature);
        for row in rows {
            row.validity
                .check_signature(table.signature)
                .map_err(StorageError::Core)?;
            if row.is_current() {
                table
                    .current
                    .insert(row.tuple.clone(), row.validity)
                    .map_err(StorageError::Core)?;
            }
            let rid = table
                .heap
                .insert(&encode_row(&row.tuple, row.validity, row.tx))?;
            table.tx_index.insert(row.tx, rid);
            table.valid_index.insert(row.validity.period(), rid);
            if row.is_current() {
                table
                    .current_rids
                    .entry((row.tuple, row.validity))
                    .or_default()
                    .push(rid);
            }
        }
        table.last_commit = last_commit;
        table.transactions = transactions;
        Ok(table)
    }

    /// All physical rows: frozen segments first (in key order per
    /// segment), then the heap tail.  Dispatches to the parallel scan
    /// above the row-count threshold.
    pub fn scan_rows(&self) -> StorageResult<Vec<BitemporalRow>> {
        let span = self.recorder.span("storage/scan");
        let parallel = self.heap.len() >= self.parallel_threshold && self.heap.pages() > 1;
        span.detail(if parallel {
            "parallel heap scan"
        } else {
            "sequential heap scan"
        });
        let mut rows = self.segment_rows()?;
        rows.extend(if parallel {
            self.scan_rows_parallel()
        } else {
            self.scan_rows_sequential()
        }?);
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }

    /// Every row held by frozen segments, in attach order (empty while
    /// nothing is frozen — the overwhelmingly common case).
    pub fn segment_rows(&self) -> StorageResult<Vec<BitemporalRow>> {
        if self.segments.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for seg in &self.segments {
            self.recorder.count(|m| &m.segment_hits);
            out.extend(seg.rows()?);
        }
        Ok(out)
    }

    /// Segment rows stored as of `t`, skipping segments whose
    /// transaction-time range excludes `t` without touching their maps.
    fn segment_rows_at(&self, t: Chronon) -> StorageResult<Vec<BitemporalRow>> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if !seg.covers(t) {
                self.recorder.count(|m| &m.segment_skips);
                continue;
            }
            self.recorder.count(|m| &m.segment_hits);
            for idx in 0..seg.chains() as usize {
                out.extend(seg.chain_rows_at(idx, t)?);
            }
        }
        Ok(out)
    }

    /// Segment rows whose transaction period overlaps `window`.
    fn segment_rows_during(&self, window: Period) -> StorageResult<Vec<BitemporalRow>> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if !seg.covers_window(window) {
                self.recorder.count(|m| &m.segment_skips);
                continue;
            }
            self.recorder.count(|m| &m.segment_hits);
            out.extend(
                seg.rows()?
                    .into_iter()
                    .filter(|row| row.tx.overlaps(window)),
            );
        }
        Ok(out)
    }

    /// Single-threaded full scan in page order (the reference path the
    /// parallel scan is differentially tested against).
    pub fn scan_rows_sequential(&self) -> StorageResult<Vec<BitemporalRow>> {
        let mut out = Vec::with_capacity(self.heap.len());
        let mut err = None;
        self.heap.scan(|_, bytes| match decode_row(bytes) {
            Ok(row) => out.push(row),
            Err(e) => err = Some(e),
        })?;
        match err {
            Some(e) => Err(e),
            None => {
                self.recorder
                    .count_n(|m| &m.heap_rows_scanned, out.len() as u64);
                Ok(out)
            }
        }
    }

    /// Morsel-driven parallel full scan: workers claim heap pages from
    /// a shared counter, copy the page's records under the pool latch,
    /// and decode outside it.  Output order (page, then slot) is
    /// identical to [`scan_rows_sequential`](Self::scan_rows_sequential).
    pub fn scan_rows_parallel(&self) -> StorageResult<Vec<BitemporalRow>> {
        let pages = self.heap.pages();
        let workers = worker_count(pages as usize);
        if workers <= 1 {
            return self.scan_rows_sequential();
        }
        let next_page = AtomicU32::new(0);
        let heap = &self.heap;
        let recorder = &self.recorder;
        let mut chunks: Vec<(u32, Vec<BitemporalRow>)> = Vec::with_capacity(pages as usize);
        std::thread::scope(|s| -> StorageResult<()> {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| -> StorageResult<Vec<(u32, Vec<BitemporalRow>)>> {
                        let mut local = Vec::new();
                        loop {
                            let page = next_page.fetch_add(1, Ordering::Relaxed);
                            if page >= pages {
                                break;
                            }
                            recorder.count(|m| &m.heap_morsels_claimed);
                            let records = heap.page_records(page)?;
                            let mut rows = Vec::with_capacity(records.len());
                            for (_, bytes) in &records {
                                rows.push(decode_row(bytes)?);
                            }
                            recorder.count_n(|m| &m.heap_rows_scanned, rows.len() as u64);
                            local.push((page, rows));
                        }
                        Ok(local)
                    })
                })
                .collect();
            for h in handles {
                chunks.extend(h.join().expect("scan worker panicked")?);
            }
            Ok(())
        })?;
        chunks.sort_unstable_by_key(|(page, _)| *page);
        Ok(chunks.into_iter().flat_map(|(_, rows)| rows).collect())
    }

    /// Decodes `rids` (already in deterministic order) and keeps rows
    /// passing `keep`, fanning out over contiguous chunks when the list
    /// is large.  Chunk results are concatenated in order, so output is
    /// byte-identical to the sequential loop.
    fn decode_rows_filtered<F>(
        &self,
        rids: &[RecordId],
        keep: F,
    ) -> StorageResult<Vec<BitemporalRow>>
    where
        F: Fn(&BitemporalRow) -> bool + Sync,
    {
        let workers = worker_count(rids.len() / 1024);
        if rids.len() < self.parallel_threshold || workers <= 1 {
            let mut out = Vec::new();
            for &rid in rids {
                let row = decode_row(&self.heap.get(rid)?)?;
                if keep(&row) {
                    out.push(row);
                }
            }
            return Ok(out);
        }
        let chunk = rids.len().div_ceil(workers);
        let keep = &keep;
        let mut out = Vec::with_capacity(rids.len());
        std::thread::scope(|s| -> StorageResult<()> {
            let handles: Vec<_> = rids
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move || -> StorageResult<Vec<BitemporalRow>> {
                        let mut local = Vec::with_capacity(slice.len());
                        for &rid in slice {
                            let row = decode_row(&self.heap.get(rid)?)?;
                            if keep(&row) {
                                local.push(row);
                            }
                        }
                        Ok(local)
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("decode worker panicked")?);
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Fallible rollback (the trait method panics on storage errors).
    ///
    /// Uses the checkpointed reconstruction when the in-memory commit
    /// log covers the table's whole history (always true for tables
    /// built by commits or WAL replay); falls back to the
    /// transaction-time index otherwise (e.g. [`from_rows`](Self::from_rows)).
    pub fn try_rollback(&self, t: Chronon) -> StorageResult<HistoricalRelation> {
        if self.commit_log.len() == self.transactions {
            self.try_rollback_checkpointed(t)
        } else {
            self.try_rollback_indexed(t)
        }
    }

    /// Rollback via checkpoint binary search plus delta replay: finds
    /// the last materialised state at or before `t` and replays at most
    /// `checkpoint_interval() − 1` commits on top of it.
    pub fn try_rollback_checkpointed(&self, t: Chronon) -> StorageResult<HistoricalRelation> {
        let span = self.recorder.span("storage/rollback");
        let visible = self.commit_log.partition_point(|(commit, _)| *commit <= t);
        let idx = self
            .checkpoints
            .partition_point(|(commits, _)| *commits <= visible);
        let (mut replayed, mut state) = match idx.checked_sub(1) {
            Some(i) => {
                let (commits, snap) = &self.checkpoints[i];
                (*commits, snap.clone())
            }
            None => (
                0,
                HistoricalRelation::new(self.schema.clone(), self.signature),
            ),
        };
        let from_checkpoint = idx > 0;
        if from_checkpoint {
            self.recorder.count(|m| &m.rollback_checkpoint_hits);
        }
        let to_replay = visible - replayed;
        self.recorder
            .count_n(|m| &m.rollback_txns_replayed, to_replay as u64);
        span.detail(format!(
            "checkpointed ({}, replayed {to_replay} of {visible} txns, K={})",
            if from_checkpoint {
                "checkpoint hit"
            } else {
                "full replay"
            },
            self.checkpoint_every
        ));
        while replayed < visible {
            let (_, ops) = &self.commit_log[replayed];
            state.apply(ops).map_err(StorageError::Core)?;
            replayed += 1;
        }
        span.rows_out(state.len() as u64);
        Ok(state)
    }

    /// Rollback via the transaction-time interval tree: stabs for every
    /// row stored at `t` and rebuilds the state from their timestamps.
    /// Cost is proportional to the size of the answer *plus* a decode
    /// per matching row; the checkpointed path usually wins (E14b).
    pub fn try_rollback_indexed(&self, t: Chronon) -> StorageResult<HistoricalRelation> {
        let span = self.recorder.span("storage/rollback");
        span.detail("tx-index stab");
        let mut rids = Vec::new();
        self.recorder.count(|m| &m.index_probes);
        self.tx_index
            .stab(TimePoint::at(t), |_, rid| rids.push(*rid));
        let mut out = HistoricalRelation::new(self.schema.clone(), self.signature);
        for row in self.segment_rows_at(t)? {
            out.insert(row.tuple, row.validity)
                .map_err(StorageError::Core)?;
        }
        // Deterministic order: by record id.
        rids.sort_unstable();
        for row in self.decode_rows_filtered(&rids, |_| true)? {
            out.insert(row.tuple, row.validity)
                .map_err(StorageError::Core)?;
        }
        span.rows_out(out.len() as u64);
        Ok(out)
    }

    /// The checkpoint interval K currently in force.
    pub fn checkpoint_interval(&self) -> usize {
        self.checkpoint_every
    }

    /// Number of materialised checkpoints.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// Total rows held across all checkpoints (the space cost of the
    /// acceleration; the E14b table reports it per K).
    pub fn checkpoint_tuples(&self) -> usize {
        self.checkpoints.iter().map(|(_, s)| s.len()).sum()
    }

    /// Transactions captured in the replayable in-memory commit log.
    pub fn logged_transactions(&self) -> usize {
        self.commit_log.len()
    }

    /// Re-checkpoints the table every `every` commits (minimum 1),
    /// rebuilding the checkpoint list from the commit log.
    pub fn set_checkpoint_interval(&mut self, every: usize) -> StorageResult<()> {
        self.checkpoint_every = every.max(1);
        self.recorder.emit_event(
            "storage_checkpoint_rebuild_start",
            &[
                ("k", self.checkpoint_every.into()),
                ("txns", self.commit_log.len().into()),
            ],
        );
        self.checkpoints.clear();
        let mut state = HistoricalRelation::new(self.schema.clone(), self.signature);
        for (i, (_, ops)) in self.commit_log.iter().enumerate() {
            state.apply(ops).map_err(StorageError::Core)?;
            if (i + 1).is_multiple_of(self.checkpoint_every) {
                self.checkpoints.push((i + 1, state.clone()));
            }
        }
        self.recorder.emit_event(
            "storage_checkpoint_rebuild_finish",
            &[
                ("k", self.checkpoint_every.into()),
                ("checkpoints", self.checkpoints.len().into()),
            ],
        );
        Ok(())
    }

    /// Row count below which scans stay sequential.  Tests lower this
    /// to force the parallel path on small tables.
    pub fn set_parallel_threshold(&mut self, rows: usize) {
        self.parallel_threshold = rows;
    }

    /// Heap pages backing the table — each page is one morsel of the
    /// parallel scan, so `heap_morsels_claimed` advances by exactly
    /// this much per parallel scan.
    pub fn heap_pages(&self) -> u32 {
        self.heap.pages()
    }

    /// Walks the heap and measures the table's physical shape: pages,
    /// occupancy, bytes per version, and the duplication factor between
    /// consecutive versions of the same key (grouped by first attribute,
    /// ordered by transaction start).  One pass over the pages plus a
    /// sort — cheap enough for `analyze` and `sys$pages`.
    pub fn physical_stats(&self) -> StorageResult<PhysicalStats> {
        let mut versions: Vec<(String, TimePoint, Vec<u8>)> = Vec::with_capacity(self.heap.len());
        let mut scan_err = None;
        self.heap.scan(|_, data| match decode_row(data) {
            Ok(row) => {
                let key = row
                    .tuple
                    .try_get(0)
                    .map(|v| format!("{v:?}"))
                    .unwrap_or_default();
                versions.push((key, row.tx.start(), data.to_vec()));
            }
            Err(e) => scan_err = Some(e),
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        versions.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        let occupied: u64 = versions.iter().map(|v| v.2.len() as u64).sum();
        let mut delta = 0u64;
        for (i, (key, _, bytes)) in versions.iter().enumerate() {
            let prev = versions[..i].last().filter(|p| p.0 == *key);
            delta += match prev {
                Some(p) => (bytes.len() - shared_bytes(&p.2, bytes)) as u64,
                None => bytes.len() as u64,
            };
        }
        let pages = self.heap.pages();
        let bytes_on_disk = u64::from(pages) * crate::page::PAGE_SIZE as u64;
        let n = versions.len() as u64;
        Ok(PhysicalStats {
            pages,
            bytes_on_disk,
            versions: n,
            occupied_bytes: occupied,
            occupancy_x1000: (occupied * 1000).checked_div(bytes_on_disk).unwrap_or(0),
            bytes_per_version: bytes_on_disk.checked_div(n).unwrap_or(0),
            dup_factor_x1000: (occupied * 1000).checked_div(delta).unwrap_or(1000),
        })
    }

    /// Borrowed view of the current historical state (avoids the clone
    /// in [`TemporalStore::current`]).
    pub fn current_ref(&self) -> &HistoricalRelation {
        &self.current
    }

    /// Rows stored as of transaction time `t`: frozen segments (range-
    /// skipped) plus the heap tail via the transaction-time index.
    pub fn rows_at(&self, t: Chronon) -> StorageResult<Vec<BitemporalRow>> {
        let span = self.recorder.span("storage/asof");
        span.detail("tx-index stab");
        let mut rows = self.segment_rows_at(t)?;
        let mut rids = Vec::new();
        self.recorder.count(|m| &m.index_probes);
        self.tx_index
            .stab(TimePoint::at(t), |_, rid| rids.push(*rid));
        rids.sort_unstable();
        rows.extend(self.decode_rows_filtered(&rids, |_| true)?);
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }

    /// Rows whose transaction period overlaps `window` (`as of …
    /// through …`).
    pub fn rows_during(&self, window: Period) -> StorageResult<Vec<BitemporalRow>> {
        let span = self.recorder.span("storage/asof");
        span.detail("tx-index overlap");
        let mut rows = self.segment_rows_during(window)?;
        let mut rids = Vec::new();
        self.recorder.count(|m| &m.index_probes);
        self.tx_index.overlapping(window, |_, rid| rids.push(*rid));
        rids.sort_unstable();
        rows.extend(self.decode_rows_filtered(&rids, |_| true)?);
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }

    /// Bitemporal point query through the indexes: rows valid at `valid`
    /// as stored at `as_of`.
    pub fn valid_at_as_of(
        &self,
        valid: Chronon,
        as_of: Chronon,
    ) -> StorageResult<Vec<BitemporalRow>> {
        let span = self.recorder.span("storage/bitemporal-point");
        span.detail("tx-index stab + valid filter");
        let mut rows: Vec<BitemporalRow> = self
            .segment_rows_at(as_of)?
            .into_iter()
            .filter(|row| row.validity.valid_at(valid))
            .collect();
        let mut rids = Vec::new();
        self.recorder.count(|m| &m.index_probes);
        self.tx_index
            .stab(TimePoint::at(as_of), |_, rid| rids.push(*rid));
        rids.sort_unstable();
        rows.extend(self.decode_rows_filtered(&rids, |row| row.validity.valid_at(valid))?);
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }

    /// As-of point lookup by first-attribute key: the query the segment
    /// skip machinery is built for.  Segments outside the as-of's
    /// transaction-time range, and segments whose bloom filter rules the
    /// key out, are skipped without materialising a single tuple; a
    /// matching chain is found by directory key compare and only then
    /// decoded.  The heap tail falls back to a tx-index stab plus a
    /// decode-and-filter (there is no key index on the heap).
    pub fn lookup_key_as_of(
        &self,
        key: &Value,
        as_of: Chronon,
    ) -> StorageResult<Vec<BitemporalRow>> {
        let span = self.recorder.span("storage/point-lookup");
        let key_bytes = segment::value_key_bytes(key);
        let mut rows = Vec::new();
        for seg in &self.segments {
            if !seg.covers(as_of) || !seg.may_contain(&key_bytes) {
                self.recorder.count(|m| &m.segment_skips);
                continue;
            }
            match seg.find_chain(&key_bytes) {
                None => self.recorder.count(|m| &m.segment_bloom_fps),
                Some(idx) => {
                    self.recorder.count(|m| &m.segment_hits);
                    rows.extend(seg.chain_rows_at(idx, as_of)?);
                }
            }
        }
        let mut rids = Vec::new();
        self.recorder.count(|m| &m.index_probes);
        self.tx_index
            .stab(TimePoint::at(as_of), |_, rid| rids.push(*rid));
        rids.sort_unstable();
        rows.extend(
            self.decode_rows_filtered(&rids, |row| row.tuple.try_get(0).is_some_and(|v| v == key))?,
        );
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }

    /// Historical timeslice of the *current* state at `t`, answered by
    /// the valid-time interval tree.
    pub fn current_valid_at(&self, t: Chronon) -> StorageResult<Vec<BitemporalRow>> {
        let span = self.recorder.span("storage/timeslice");
        span.detail("valid-interval-tree stab");
        let mut rids = Vec::new();
        self.recorder.count(|m| &m.index_probes);
        self.valid_index
            .stab(TimePoint::at(t), |_, rid| rids.push(*rid));
        rids.sort_unstable();
        let rows =
            self.decode_rows_filtered(&rids, |row| row.is_current() && row.validity.valid_at(t))?;
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }

    /// Rows whose valid period overlaps `q` in the current state.
    pub fn current_overlapping(&self, q: Period) -> StorageResult<Vec<BitemporalRow>> {
        let span = self.recorder.span("storage/timeslice");
        span.detail("valid-interval-tree overlap");
        let mut rids = Vec::new();
        self.recorder.count(|m| &m.index_probes);
        self.valid_index.overlapping(q, |_, rid| rids.push(*rid));
        rids.sort_unstable();
        let rows = self.decode_rows_filtered(&rids, |row| row.is_current())?;
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }

    /// Fallible commit.
    pub fn try_commit(&mut self, tx_time: Chronon, ops: &[HistoricalOp]) -> StorageResult<()> {
        self.commit_internal(tx_time, ops, true)
    }

    fn commit_internal(
        &mut self,
        tx_time: Chronon,
        ops: &[HistoricalOp],
        log: bool,
    ) -> StorageResult<()> {
        // Clone the handle so the span's borrow doesn't pin `self`.
        let recorder = Arc::clone(&self.recorder);
        let span = recorder.span("storage/commit");
        span.rows_in(ops.len() as u64);
        if let Some(last) = self.last_commit {
            if tx_time <= last {
                return Err(StorageError::Core(CoreError::NonMonotonicCommit {
                    last: last.to_string(),
                    attempted: tx_time.to_string(),
                }));
            }
        }
        // Validate through the reference semantics first.
        let mut next = self.current.clone();
        next.apply(ops).map_err(StorageError::Core)?;

        // Write-ahead: the log reaches disk before the table changes.
        if log {
            if let Some(wal) = &mut self.wal {
                wal.append(&WalRecord {
                    rel_id: self.rel_id,
                    tx_time,
                    ops: ops.to_vec(),
                })?;
            }
        }

        crate::fault::crash_point("table.commit.apply")?;
        for op in ops {
            match op {
                HistoricalOp::Insert { tuple, validity } => {
                    self.physical_insert(tuple.clone(), *validity, tx_time)?;
                }
                HistoricalOp::Remove { selector } => {
                    let victims = self.matching_current(selector);
                    for key in victims {
                        self.physical_close(&key, tx_time)?;
                    }
                }
                HistoricalOp::SetValidity { selector, validity } => {
                    let victims = self.matching_current(selector);
                    for key in victims {
                        self.physical_close(&key, tx_time)?;
                        self.physical_insert(key.0.clone(), *validity, tx_time)?;
                    }
                }
            }
        }
        self.current = next;
        self.last_commit = Some(tx_time);
        self.transactions += 1;
        self.commit_log.push((tx_time, ops.to_vec()));
        if self.commit_log.len().is_multiple_of(self.checkpoint_every) {
            self.checkpoints
                .push((self.commit_log.len(), self.current.clone()));
            self.recorder.emit_event(
                "storage_checkpoint",
                &[
                    ("k", self.checkpoint_every.into()),
                    ("txns", self.commit_log.len().into()),
                    ("rows", self.current.len().into()),
                ],
            );
        }
        Ok(())
    }

    fn matching_current(
        &self,
        selector: &chronos_core::relation::RowSelector,
    ) -> Vec<(Tuple, Validity)> {
        self.current_rids
            .keys()
            .filter(|(t, v)| selector.matches(t, *v))
            .cloned()
            .collect()
    }

    fn physical_insert(
        &mut self,
        tuple: Tuple,
        validity: Validity,
        tx_time: Chronon,
    ) -> StorageResult<()> {
        let tx = Period::from_start(tx_time);
        let rid = self.heap.insert(&encode_row(&tuple, validity, tx))?;
        self.tx_index.insert(tx, rid);
        self.valid_index.insert(validity.period(), rid);
        self.current_rids
            .entry((tuple, validity))
            .or_default()
            .push(rid);
        Ok(())
    }

    fn physical_close(&mut self, key: &(Tuple, Validity), tx_time: Chronon) -> StorageResult<()> {
        let rids = self
            .current_rids
            .remove(key)
            .expect("matching_current returned a live key");
        for rid in rids {
            let row = decode_row(&self.heap.get(rid)?)?;
            let closed_tx = Period::clamped(row.tx.start(), TimePoint::at(tx_time));
            let new_rid = self
                .heap
                .update(rid, &encode_row(&row.tuple, row.validity, closed_tx))?;
            // Reindex under the (possibly moved) record id and closed
            // transaction period.
            assert!(self.tx_index.remove(row.tx, &rid), "tx index in sync");
            assert!(
                self.valid_index.remove(row.validity.period(), &rid),
                "valid index in sync"
            );
            self.tx_index.insert(closed_tx, new_rid);
            self.valid_index.insert(row.validity.period(), new_rid);
        }
        Ok(())
    }

    /// Flushes heap pages (durability of the log does not depend on
    /// this; the heap is reconstructed from the log on open).
    pub fn flush(&self) -> StorageResult<()> {
        self.heap.pool().flush()
    }

    /// The frozen segments attached to this table.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Versions held by frozen segments.
    pub fn segment_versions(&self) -> usize {
        self.segments.iter().map(|s| s.versions() as usize).sum()
    }

    /// Versions still on the heap whose transaction period is closed —
    /// immutable forever, hence freezable.  Cheap: the heap row count
    /// minus the open (current) rows tracked by the version map.
    pub fn frozen_version_count(&self) -> usize {
        self.heap.len() - self.current_rids.values().map(Vec::len).sum::<usize>()
    }

    /// Freezes every closed version out of the heap into an immutable
    /// segment at `path`, leaving the mutable tail (open transaction
    /// periods) on the pager.  Returns `None` when nothing is
    /// freezable.  Ordering of the durability steps is what makes a
    /// crash at any point harmless:
    ///
    /// 1. the segment is written to a `.tmp` sibling, fsynced, and
    ///    renamed into place (`segment.write` / `segment.rename`);
    /// 2. the segment is mapped and validated (`segment.mmap_open`);
    /// 3. only then are the frozen rows deleted from the heap and
    ///    de-indexed.
    ///
    /// The WAL and checkpoint images remain the authority throughout —
    /// recovery rebuilds the full heap and discards stale segments, so
    /// an interrupted freeze is simply redone later.
    pub fn freeze_into(&mut self, path: &Path) -> StorageResult<Option<FreezeReport>> {
        let span = self.recorder.span("storage/freeze");
        let mut victims: Vec<(RecordId, BitemporalRow)> = Vec::new();
        let mut scan_err = None;
        self.heap.scan(|rid, bytes| match decode_row(bytes) {
            Ok(row) => {
                if !row.is_current() {
                    victims.push((rid, row));
                }
            }
            Err(e) => scan_err = Some(e),
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        if victims.is_empty() {
            span.detail("nothing frozen (no closed versions)");
            return Ok(None);
        }
        let rows: Vec<BitemporalRow> = victims.iter().map(|(_, row)| row.clone()).collect();
        let report = segment::write_segment(path, self.rel_id, &rows)?;
        let seg = Arc::new(Segment::open(path)?);
        // The segment is durable and mapped: the heap copies can go.
        for (rid, row) in victims {
            self.heap.delete(rid)?;
            assert!(self.tx_index.remove(row.tx, &rid), "tx index in sync");
            assert!(
                self.valid_index.remove(row.validity.period(), &rid),
                "valid index in sync"
            );
        }
        span.detail(format!(
            "froze {} version(s) in {} chain(s), {} bytes",
            report.versions, report.chains, report.file_bytes
        ));
        span.rows_out(report.versions);
        self.segments.push(seg);
        Ok(Some(report))
    }
}

impl<S: PageStore> TemporalStore for StoredBitemporalTable<S> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn signature(&self) -> TemporalSignature {
        self.signature
    }

    fn commit(&mut self, tx_time: Chronon, ops: &[HistoricalOp]) -> chronos_core::CoreResult<()> {
        self.try_commit(tx_time, ops).map_err(|e| match e {
            StorageError::Core(c) => c,
            other => CoreError::Invalid(other.to_string()),
        })
    }

    fn rollback(&self, t: Chronon) -> HistoricalRelation {
        self.try_rollback(t)
            .expect("storage-backed rollback failed (corrupt heap?)")
    }

    fn current(&self) -> HistoricalRelation {
        self.current.clone()
    }

    fn last_commit(&self) -> Option<Chronon> {
        self.last_commit
    }

    fn transactions(&self) -> usize {
        self.transactions
    }

    fn stored_tuples(&self) -> usize {
        self.heap.len() + self.segment_versions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::calendar::date;
    use chronos_core::relation::temporal::BitemporalTable;
    use chronos_core::relation::RowSelector;
    use chronos_core::schema::faculty_schema;
    use chronos_core::tuple::tuple;

    fn d(s: &str) -> Chronon {
        date(s).unwrap()
    }

    fn drive_figure_8<T: TemporalStore>(s: &mut T) {
        s.begin()
            .insert(
                tuple(["Merrie", "associate"]),
                Period::from_start(d("09/01/77")),
            )
            .commit(d("08/25/77"))
            .unwrap();
        s.begin()
            .insert(tuple(["Tom", "full"]), Period::from_start(d("12/05/82")))
            .commit(d("12/01/82"))
            .unwrap();
        s.begin()
            .remove(RowSelector::tuple(tuple(["Tom", "full"])))
            .insert(
                tuple(["Tom", "associate"]),
                Period::from_start(d("12/05/82")),
            )
            .commit(d("12/07/82"))
            .unwrap();
        s.begin()
            .set_validity(
                RowSelector::tuple(tuple(["Merrie", "associate"])),
                Period::new(d("09/01/77"), d("12/01/82")).unwrap(),
            )
            .insert(tuple(["Merrie", "full"]), Period::from_start(d("12/01/82")))
            .commit(d("12/15/82"))
            .unwrap();
        s.begin()
            .insert(
                tuple(["Mike", "assistant"]),
                Period::from_start(d("01/01/83")),
            )
            .commit(d("01/10/83"))
            .unwrap();
        s.begin()
            .set_validity(
                RowSelector::tuple(tuple(["Mike", "assistant"])),
                Period::new(d("01/01/83"), d("03/01/84")).unwrap(),
            )
            .commit(d("02/25/84"))
            .unwrap();
    }

    #[test]
    fn agrees_with_reference_bitemporal_table() {
        let mut stored =
            StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        let mut reference = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        drive_figure_8(&mut stored);
        drive_figure_8(&mut reference);

        assert_eq!(stored.stored_tuples(), 7);
        assert_eq!(stored.current(), reference.current());
        for t in (d("01/01/77").ticks()..=d("12/31/84").ticks()).step_by(5) {
            let t = Chronon::new(t);
            assert_eq!(stored.rollback(t), reference.rollback(t), "at {t}");
        }
        // Physical rows match as multisets.
        let mut a = stored.scan_rows().unwrap();
        let mut b = reference.rows().to_vec();
        let key = |r: &BitemporalRow| {
            (
                r.tuple.clone(),
                r.validity.period().start(),
                r.validity.period().end(),
                r.tx.start(),
                r.tx.end(),
            )
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_queries_answer_the_paper() {
        let mut stored =
            StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_figure_8(&mut stored);
        // as of 12/10/82, valid at 12/05/82 → Merrie associate.
        let rows = stored.valid_at_as_of(d("12/05/82"), d("12/10/82")).unwrap();
        let merrie: Vec<_> = rows
            .iter()
            .filter(|r| r.tuple.get(0).as_str() == Some("Merrie"))
            .collect();
        assert_eq!(merrie.len(), 1);
        assert_eq!(merrie[0].tuple.get(1).as_str(), Some("associate"));
        // current timeslice at 12/05/82 → full (corrected history).
        let rows = stored.current_valid_at(d("12/05/82")).unwrap();
        let merrie: Vec<_> = rows
            .iter()
            .filter(|r| r.tuple.get(0).as_str() == Some("Merrie"))
            .collect();
        assert_eq!(merrie[0].tuple.get(1).as_str(), Some("full"));
        // overlap scan.
        let q = Period::new(d("01/01/83"), d("01/01/84")).unwrap();
        assert_eq!(stored.current_overlapping(q).unwrap().len(), 3);
    }

    #[test]
    fn physical_stats_measure_versions_and_duplication() {
        let mut t = StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        let empty = t.physical_stats().unwrap();
        assert_eq!(empty.versions, 0);
        assert_eq!(empty.dup_factor_x1000, 1000, "no versions, no duplication");
        drive_figure_8(&mut t);
        let stats = t.physical_stats().unwrap();
        assert_eq!(stats.versions, 7);
        assert_eq!(stats.pages, t.heap_pages());
        assert_eq!(
            stats.bytes_on_disk,
            u64::from(stats.pages) * crate::page::PAGE_SIZE as u64
        );
        assert!(stats.occupied_bytes > 0);
        assert!(stats.occupied_bytes <= stats.bytes_on_disk);
        assert_eq!(
            stats.occupancy_x1000,
            stats.occupied_bytes * 1000 / stats.bytes_on_disk
        );
        assert_eq!(stats.bytes_per_version, stats.bytes_on_disk / 7);
        // Merrie and Mike each store consecutive versions differing only
        // in a few timestamp bytes, so measured duplication exceeds 1.0×.
        assert!(stats.dup_factor_x1000 > 1000, "{stats:?}");
    }

    #[test]
    fn shared_bytes_prices_prefix_plus_suffix() {
        assert_eq!(shared_bytes(b"abcdef", b"abcxef"), 5);
        assert_eq!(shared_bytes(b"abc", b"abc"), 3);
        assert_eq!(shared_bytes(b"abc", b"xyz"), 0);
        // Prefix and suffix overlap is capped at the shorter length.
        assert_eq!(shared_bytes(b"aaaa", b"aaaaaa"), 4);
        assert_eq!(shared_bytes(b"", b"abc"), 0);
    }

    #[test]
    fn durable_table_replays_after_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("chronos-table-wal-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut t = StoredBitemporalTable::open_durable(
                &path,
                7,
                faculty_schema(),
                TemporalSignature::Interval,
            )
            .unwrap();
            drive_figure_8(&mut t);
        } // dropped: only the WAL survives
        let t = StoredBitemporalTable::open_durable(
            &path,
            7,
            faculty_schema(),
            TemporalSignature::Interval,
        )
        .unwrap();
        assert_eq!(t.transactions(), 6);
        assert_eq!(t.stored_tuples(), 7);
        assert_eq!(t.last_commit(), Some(d("02/25/84")));
        let rows = t.valid_at_as_of(d("12/05/82"), d("12/10/82")).unwrap();
        assert!(rows
            .iter()
            .any(|r| r.tuple.get(1).as_str() == Some("associate")));
        // Other relations' records in the same log are ignored.
        let other = StoredBitemporalTable::open_durable(
            &path,
            99,
            faculty_schema(),
            TemporalSignature::Interval,
        )
        .unwrap();
        assert_eq!(other.transactions(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_recovery_drops_only_the_torn_commit() {
        use std::io::Write;
        let mut path = std::env::temp_dir();
        path.push(format!("chronos-table-torn-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut t = StoredBitemporalTable::open_durable(
                &path,
                1,
                faculty_schema(),
                TemporalSignature::Interval,
            )
            .unwrap();
            drive_figure_8(&mut t);
        }
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0x10, 0x00, 0x00, 0x00, 0xDE, 0xAD]).unwrap();
        }
        let t = StoredBitemporalTable::open_durable(
            &path,
            1,
            faculty_schema(),
            TemporalSignature::Interval,
        )
        .unwrap();
        assert_eq!(t.transactions(), 6, "intact commits survive the torn tail");
        std::fs::remove_file(&path).unwrap();
    }

    /// Many-commit workload over a two-column schema: inserts with
    /// occasional validity corrections, commit times 10 ticks apart.
    fn drive_many(s: &mut impl TemporalStore, commits: usize) {
        for i in 0..commits {
            let t = Chronon::new((i as i64 + 1) * 10);
            let name = format!("row{i}");
            let mut txn = s.begin().insert(
                tuple([name.as_str(), "assistant"]),
                Period::from_start(Chronon::new(i as i64)),
            );
            if i % 7 == 3 {
                let prev = format!("row{}", i - 1);
                txn = txn.set_validity(
                    RowSelector::tuple(tuple([prev.as_str(), "assistant"])),
                    Period::new(Chronon::new(i as i64 - 1), Chronon::new(i as i64 + 100)).unwrap(),
                );
            }
            txn.commit(t).unwrap();
        }
    }

    #[test]
    fn checkpointed_rollback_matches_indexed() {
        let mut t = StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        t.set_checkpoint_interval(8).unwrap();
        drive_many(&mut t, 50);
        assert_eq!(t.checkpoints(), 50 / 8);
        assert_eq!(t.logged_transactions(), 50);
        // Probe at, between, before, and after every commit time.
        for tick in [0, 5, 10, 15, 77, 80, 123, 250, 495, 500, 9999] {
            let at = Chronon::new(tick);
            assert_eq!(
                t.try_rollback_checkpointed(at).unwrap(),
                t.try_rollback_indexed(at).unwrap(),
                "rollback mismatch at tick {tick}"
            );
        }
    }

    #[test]
    fn reinterval_rebuilds_checkpoints() {
        let mut t = StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_many(&mut t, 30);
        let reference = t.try_rollback_indexed(Chronon::new(155)).unwrap();
        for k in [1, 4, 16, 64] {
            t.set_checkpoint_interval(k).unwrap();
            assert_eq!(t.checkpoints(), 30 / k);
            assert_eq!(
                t.try_rollback_checkpointed(Chronon::new(155)).unwrap(),
                reference,
                "K={k}"
            );
        }
    }

    #[test]
    fn from_rows_table_falls_back_to_indexed_rollback() {
        let mut src =
            StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_figure_8(&mut src);
        let rebuilt = StoredBitemporalTable::<MemPager>::from_rows(
            faculty_schema(),
            TemporalSignature::Interval,
            src.scan_rows().unwrap(),
            src.last_commit(),
            src.transactions(),
        )
        .unwrap();
        assert_eq!(rebuilt.logged_transactions(), 0);
        // try_rollback must dispatch to the index, not the (empty) log.
        let at = d("12/10/82");
        assert_eq!(rebuilt.try_rollback(at).unwrap(), src.rollback(at));
    }

    #[test]
    fn parallel_scan_matches_sequential_in_order() {
        let mut t = StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_many(&mut t, 200);
        t.set_parallel_threshold(1); // force the parallel paths
        assert!(t.heap.pages() > 1, "workload spans several pages");
        let seq = t.scan_rows_sequential().unwrap();
        let par = t.scan_rows_parallel().unwrap();
        assert_eq!(seq, par, "parallel scan must preserve page/slot order");
        assert_eq!(t.scan_rows().unwrap(), seq);
        // Index-probe materialisation also goes parallel below threshold.
        let at = Chronon::new(155);
        let rows = t.rows_at(at).unwrap();
        assert!(!rows.is_empty());
        let slice = t.current_valid_at(Chronon::new(42)).unwrap();
        assert!(!slice.is_empty());
    }

    #[test]
    fn durable_replay_rebuilds_checkpoints() {
        let mut path = std::env::temp_dir();
        path.push(format!("chronos-table-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut t = StoredBitemporalTable::open_durable(
                &path,
                3,
                faculty_schema(),
                TemporalSignature::Interval,
            )
            .unwrap();
            drive_figure_8(&mut t);
        }
        let mut t = StoredBitemporalTable::open_durable(
            &path,
            3,
            faculty_schema(),
            TemporalSignature::Interval,
        )
        .unwrap();
        assert_eq!(t.logged_transactions(), 6, "replay rebuilds the commit log");
        t.set_checkpoint_interval(2).unwrap();
        assert_eq!(t.checkpoints(), 3);
        let at = d("12/10/82");
        assert_eq!(
            t.try_rollback_checkpointed(at).unwrap(),
            t.try_rollback_indexed(at).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    fn seg_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "chronos-table-seg-{tag}-{}.seg",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sorted_encodings(rows: &[BitemporalRow]) -> Vec<Vec<u8>> {
        let mut enc: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| encode_row(&r.tuple, r.validity, r.tx))
            .collect();
        enc.sort();
        enc
    }

    #[test]
    fn freeze_moves_closed_versions_and_preserves_answers_byte_identically() {
        let mut t = StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_figure_8(&mut t);
        let before = t.scan_rows().unwrap();
        let closed = t.frozen_version_count();
        assert_eq!(closed, 3, "figure 8 closes three versions");

        let path = seg_path("fig8");
        let report = t.freeze_into(&path).unwrap().expect("something froze");
        assert_eq!(report.versions as usize, closed);
        assert_eq!(t.frozen_version_count(), 0, "tail holds only open rows");
        assert_eq!(t.stored_tuples(), 7, "logical content unchanged");
        assert_eq!(t.segment_versions(), closed);

        // The mmap-backed answer is byte-identical to the heap answer.
        let after = t.scan_rows().unwrap();
        assert_eq!(sorted_encodings(&before), sorted_encodings(&after));

        // Indexed reads merge segments and agree with the pre-freeze
        // reference on every probe.
        let probe = d("12/10/82");
        assert_eq!(
            sorted_encodings(&t.rows_at(probe).unwrap()),
            sorted_encodings(
                &before
                    .iter()
                    .filter(|r| r.tx.contains(probe))
                    .cloned()
                    .collect::<Vec<_>>()
            )
        );
        for tick in (d("01/01/77").ticks()..=d("12/31/84").ticks()).step_by(7) {
            let at = Chronon::new(tick);
            assert_eq!(
                t.try_rollback_indexed(at).unwrap(),
                t.try_rollback_checkpointed(at).unwrap(),
                "rollback mismatch at {at}"
            );
        }

        // Nothing left to freeze: a second call is a no-op.
        let again = seg_path("fig8-again");
        assert!(t.freeze_into(&again).unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn point_lookup_agrees_between_heap_and_segments() {
        let mut heap_only =
            StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        let mut frozen =
            StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_many(&mut heap_only, 60);
        drive_many(&mut frozen, 60);
        let path = seg_path("lookup");
        frozen.freeze_into(&path).unwrap().expect("chains froze");
        for tick in [5, 35, 77, 140, 300, 601] {
            let at = Chronon::new(tick);
            for key in ["row2", "row9", "row31", "ghost"] {
                let k = chronos_core::value::Value::str(key);
                assert_eq!(
                    sorted_encodings(&heap_only.lookup_key_as_of(&k, at).unwrap()),
                    sorted_encodings(&frozen.lookup_key_as_of(&k, at).unwrap()),
                    "lookup({key}) as of {at}"
                );
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_commit_leaves_no_trace() {
        let mut t = StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_figure_8(&mut t);
        let before = t.stored_tuples();
        let err = t
            .begin()
            .remove(RowSelector::tuple(tuple(["Ghost", "x"])))
            .commit(d("06/01/84"));
        assert!(err.is_err());
        assert_eq!(t.stored_tuples(), before);
        assert_eq!(t.transactions(), 6);
    }
}
