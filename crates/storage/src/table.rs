//! The storage-backed temporal relation.
//!
//! [`StoredBitemporalTable`] is the production implementation of the
//! paper's temporal relation: rows live in a slotted-page [`HeapFile`],
//! every commit is logically logged to a [`Wal`] before being applied
//! (write-ahead rule), and three access paths accelerate the taxonomy's
//! characteristic queries:
//!
//! * a **transaction-time interval tree** — the rollback operation
//!   (`as of t`) is a stabbing query;
//! * a **valid-time interval tree** — historical timeslices
//!   (`valid at t`) are stabbing queries;
//! * a **current-version map** — modifications address rows of the
//!   current historical state by content.
//!
//! Semantics are defined by `chronos-core`'s reference stores: every
//! commit is validated against an in-memory mirror of the current
//! historical state using exactly the reference transition rules, so the
//! stored table is observationally equivalent to
//! [`SnapshotTemporal`](chronos_core::relation::temporal::SnapshotTemporal)
//! and [`BitemporalTable`](chronos_core::relation::temporal::BitemporalTable)
//! by construction — and differentially tested to be.

use std::collections::HashMap;
use std::path::Path;

use chronos_core::chronon::Chronon;
use chronos_core::error::CoreError;
use chronos_core::period::Period;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::relation::temporal::{BitemporalRow, TemporalStore};
use chronos_core::relation::{HistoricalOp, Validity};
use chronos_core::schema::{Schema, TemporalSignature};
use chronos_core::timepoint::TimePoint;
use chronos_core::tuple::Tuple;

use crate::codec::{get_period, get_tuple, get_validity, put_period, put_tuple, put_validity, Reader};
use crate::error::{StorageError, StorageResult};
use crate::heap::HeapFile;
use crate::index::IntervalTree;
use crate::page::RecordId;
use crate::pager::{BufferPool, MemPager, PageStore};
use crate::wal::{Wal, WalRecord};

fn encode_row(tuple: &Tuple, validity: Validity, tx: Period) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_tuple(&mut buf, tuple);
    put_validity(&mut buf, validity);
    put_period(&mut buf, tx);
    buf
}

fn decode_row(bytes: &[u8]) -> StorageResult<BitemporalRow> {
    let mut r = Reader::new(bytes);
    let tuple = get_tuple(&mut r)?;
    let validity = get_validity(&mut r)?;
    let tx = get_period(&mut r)?;
    if !r.is_exhausted() {
        return Err(StorageError::Corrupt("trailing bytes after row".into()));
    }
    Ok(BitemporalRow { tuple, validity, tx })
}

/// A durable, index-accelerated temporal relation.
pub struct StoredBitemporalTable<S: PageStore = MemPager> {
    schema: Schema,
    signature: TemporalSignature,
    rel_id: u32,
    heap: HeapFile<S>,
    wal: Option<Wal>,
    /// Mirror of the current historical state (reference semantics).
    current: HistoricalRelation,
    /// Record ids of current rows, addressed by content.
    current_rids: HashMap<(Tuple, Validity), Vec<RecordId>>,
    /// Transaction-time periods of every row.
    tx_index: IntervalTree<RecordId>,
    /// Valid-time periods of every row.
    valid_index: IntervalTree<RecordId>,
    last_commit: Option<Chronon>,
    transactions: usize,
}

impl StoredBitemporalTable<MemPager> {
    /// Creates a fresh in-memory table (no durability).
    pub fn in_memory(schema: Schema, signature: TemporalSignature) -> Self {
        let heap = HeapFile::open(BufferPool::new(MemPager::new(), 64))
            .expect("empty in-memory heap opens");
        StoredBitemporalTable {
            current: HistoricalRelation::new(schema.clone(), signature),
            schema,
            signature,
            rel_id: 0,
            heap,
            wal: None,
            current_rids: HashMap::new(),
            tx_index: IntervalTree::new(),
            valid_index: IntervalTree::new(),
            last_commit: None,
            transactions: 0,
        }
    }

    /// Opens a durable table whose state is the replay of the write-ahead
    /// log at `wal_path` (records for other relations are ignored).  A
    /// torn tail left by a crash is truncated.
    pub fn open_durable(
        wal_path: &Path,
        rel_id: u32,
        schema: Schema,
        signature: TemporalSignature,
    ) -> StorageResult<Self> {
        let recovered = Wal::truncate_torn_tail(wal_path)?;
        let mut table = StoredBitemporalTable::in_memory(schema, signature);
        table.rel_id = rel_id;
        for rec in &recovered.records {
            if rec.rel_id != rel_id {
                continue;
            }
            table
                .commit_internal(rec.tx_time, &rec.ops, false)
                .map_err(|e| {
                    StorageError::Corrupt(format!(
                        "log replay failed at tx {}: {e}",
                        rec.tx_time
                    ))
                })?;
        }
        table.wal = Some(Wal::open(wal_path)?);
        Ok(table)
    }
}

impl<S: PageStore> StoredBitemporalTable<S> {
    /// The relation id used in the shared log.
    pub fn rel_id(&self) -> u32 {
        self.rel_id
    }

    /// Reconstructs a table from checkpointed rows, rebuilding the heap,
    /// both interval trees, the current-version map, and the current
    /// historical state (whose duplicate checks validate the rows).
    pub fn from_rows(
        schema: Schema,
        signature: TemporalSignature,
        rows: Vec<BitemporalRow>,
        last_commit: Option<Chronon>,
        transactions: usize,
    ) -> StorageResult<StoredBitemporalTable<MemPager>> {
        let mut table = StoredBitemporalTable::in_memory(schema, signature);
        for row in rows {
            row.validity
                .check_signature(table.signature)
                .map_err(StorageError::Core)?;
            if row.is_current() {
                table
                    .current
                    .insert(row.tuple.clone(), row.validity)
                    .map_err(StorageError::Core)?;
            }
            let rid = table
                .heap
                .insert(&encode_row(&row.tuple, row.validity, row.tx))?;
            table.tx_index.insert(row.tx, rid);
            table.valid_index.insert(row.validity.period(), rid);
            if row.is_current() {
                table
                    .current_rids
                    .entry((row.tuple, row.validity))
                    .or_default()
                    .push(rid);
            }
        }
        table.last_commit = last_commit;
        table.transactions = transactions;
        Ok(table)
    }

    /// All physical rows (decoded from the heap).
    pub fn scan_rows(&self) -> StorageResult<Vec<BitemporalRow>> {
        let mut out = Vec::with_capacity(self.heap.len());
        let mut err = None;
        self.heap.scan(|_, bytes| match decode_row(bytes) {
            Ok(row) => out.push(row),
            Err(e) => err = Some(e),
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Fallible rollback (the trait method panics on storage errors).
    pub fn try_rollback(&self, t: Chronon) -> StorageResult<HistoricalRelation> {
        let mut rids = Vec::new();
        self.tx_index.stab(TimePoint::at(t), |_, rid| rids.push(*rid));
        let mut out = HistoricalRelation::new(self.schema.clone(), self.signature);
        // Deterministic order: by record id.
        rids.sort_unstable();
        for rid in rids {
            let row = decode_row(&self.heap.get(rid)?)?;
            out.insert(row.tuple, row.validity)
                .map_err(StorageError::Core)?;
        }
        Ok(out)
    }

    /// Rows stored as of transaction time `t`, via the transaction-time
    /// index (each with its full timestamps).
    pub fn rows_at(&self, t: Chronon) -> StorageResult<Vec<BitemporalRow>> {
        let mut rids = Vec::new();
        self.tx_index.stab(TimePoint::at(t), |_, rid| rids.push(*rid));
        rids.sort_unstable();
        rids.into_iter()
            .map(|rid| decode_row(&self.heap.get(rid)?))
            .collect()
    }

    /// Rows whose transaction period overlaps `window` (`as of …
    /// through …`).
    pub fn rows_during(&self, window: Period) -> StorageResult<Vec<BitemporalRow>> {
        let mut rids = Vec::new();
        self.tx_index.overlapping(window, |_, rid| rids.push(*rid));
        rids.sort_unstable();
        rids.into_iter()
            .map(|rid| decode_row(&self.heap.get(rid)?))
            .collect()
    }

    /// Bitemporal point query through the indexes: rows valid at `valid`
    /// as stored at `as_of`.
    pub fn valid_at_as_of(
        &self,
        valid: Chronon,
        as_of: Chronon,
    ) -> StorageResult<Vec<BitemporalRow>> {
        let mut rids = Vec::new();
        self.tx_index.stab(TimePoint::at(as_of), |_, rid| rids.push(*rid));
        rids.sort_unstable();
        let mut out = Vec::new();
        for rid in rids {
            let row = decode_row(&self.heap.get(rid)?)?;
            if row.validity.valid_at(valid) {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Historical timeslice of the *current* state at `t`, answered by
    /// the valid-time interval tree.
    pub fn current_valid_at(&self, t: Chronon) -> StorageResult<Vec<BitemporalRow>> {
        let mut rids = Vec::new();
        self.valid_index.stab(TimePoint::at(t), |_, rid| rids.push(*rid));
        rids.sort_unstable();
        let mut out = Vec::new();
        for rid in rids {
            let row = decode_row(&self.heap.get(rid)?)?;
            if row.is_current() && row.validity.valid_at(t) {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Rows whose valid period overlaps `q` in the current state.
    pub fn current_overlapping(&self, q: Period) -> StorageResult<Vec<BitemporalRow>> {
        let mut rids = Vec::new();
        self.valid_index.overlapping(q, |_, rid| rids.push(*rid));
        rids.sort_unstable();
        let mut out = Vec::new();
        for rid in rids {
            let row = decode_row(&self.heap.get(rid)?)?;
            if row.is_current() {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Fallible commit.
    pub fn try_commit(&mut self, tx_time: Chronon, ops: &[HistoricalOp]) -> StorageResult<()> {
        self.commit_internal(tx_time, ops, true)
    }

    fn commit_internal(
        &mut self,
        tx_time: Chronon,
        ops: &[HistoricalOp],
        log: bool,
    ) -> StorageResult<()> {
        if let Some(last) = self.last_commit {
            if tx_time <= last {
                return Err(StorageError::Core(CoreError::NonMonotonicCommit {
                    last: last.to_string(),
                    attempted: tx_time.to_string(),
                }));
            }
        }
        // Validate through the reference semantics first.
        let mut next = self.current.clone();
        next.apply(ops).map_err(StorageError::Core)?;

        // Write-ahead: the log reaches disk before the table changes.
        if log {
            if let Some(wal) = &mut self.wal {
                wal.append(&WalRecord {
                    rel_id: self.rel_id,
                    tx_time,
                    ops: ops.to_vec(),
                })?;
            }
        }

        for op in ops {
            match op {
                HistoricalOp::Insert { tuple, validity } => {
                    self.physical_insert(tuple.clone(), *validity, tx_time)?;
                }
                HistoricalOp::Remove { selector } => {
                    let victims = self.matching_current(selector);
                    for key in victims {
                        self.physical_close(&key, tx_time)?;
                    }
                }
                HistoricalOp::SetValidity { selector, validity } => {
                    let victims = self.matching_current(selector);
                    for key in victims {
                        self.physical_close(&key, tx_time)?;
                        self.physical_insert(key.0.clone(), *validity, tx_time)?;
                    }
                }
            }
        }
        self.current = next;
        self.last_commit = Some(tx_time);
        self.transactions += 1;
        Ok(())
    }

    fn matching_current(
        &self,
        selector: &chronos_core::relation::RowSelector,
    ) -> Vec<(Tuple, Validity)> {
        self.current_rids
            .keys()
            .filter(|(t, v)| selector.matches(t, *v))
            .cloned()
            .collect()
    }

    fn physical_insert(
        &mut self,
        tuple: Tuple,
        validity: Validity,
        tx_time: Chronon,
    ) -> StorageResult<()> {
        let tx = Period::from_start(tx_time);
        let rid = self.heap.insert(&encode_row(&tuple, validity, tx))?;
        self.tx_index.insert(tx, rid);
        self.valid_index.insert(validity.period(), rid);
        self.current_rids
            .entry((tuple, validity))
            .or_default()
            .push(rid);
        Ok(())
    }

    fn physical_close(&mut self, key: &(Tuple, Validity), tx_time: Chronon) -> StorageResult<()> {
        let rids = self
            .current_rids
            .remove(key)
            .expect("matching_current returned a live key");
        for rid in rids {
            let row = decode_row(&self.heap.get(rid)?)?;
            let closed_tx = Period::clamped(row.tx.start(), TimePoint::at(tx_time));
            let new_rid = self
                .heap
                .update(rid, &encode_row(&row.tuple, row.validity, closed_tx))?;
            // Reindex under the (possibly moved) record id and closed
            // transaction period.
            assert!(self.tx_index.remove(row.tx, &rid), "tx index in sync");
            assert!(
                self.valid_index.remove(row.validity.period(), &rid),
                "valid index in sync"
            );
            self.tx_index.insert(closed_tx, new_rid);
            self.valid_index.insert(row.validity.period(), new_rid);
        }
        Ok(())
    }

    /// Flushes heap pages (durability of the log does not depend on
    /// this; the heap is reconstructed from the log on open).
    pub fn flush(&self) -> StorageResult<()> {
        self.heap.pool().flush()
    }
}

impl<S: PageStore> TemporalStore for StoredBitemporalTable<S> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn signature(&self) -> TemporalSignature {
        self.signature
    }

    fn commit(
        &mut self,
        tx_time: Chronon,
        ops: &[HistoricalOp],
    ) -> chronos_core::CoreResult<()> {
        self.try_commit(tx_time, ops).map_err(|e| match e {
            StorageError::Core(c) => c,
            other => CoreError::Invalid(other.to_string()),
        })
    }

    fn rollback(&self, t: Chronon) -> HistoricalRelation {
        self.try_rollback(t)
            .expect("storage-backed rollback failed (corrupt heap?)")
    }

    fn current(&self) -> HistoricalRelation {
        self.current.clone()
    }

    fn last_commit(&self) -> Option<Chronon> {
        self.last_commit
    }

    fn transactions(&self) -> usize {
        self.transactions
    }

    fn stored_tuples(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::calendar::date;
    use chronos_core::relation::temporal::BitemporalTable;
    use chronos_core::relation::RowSelector;
    use chronos_core::schema::faculty_schema;
    use chronos_core::tuple::tuple;

    fn d(s: &str) -> Chronon {
        date(s).unwrap()
    }

    fn drive_figure_8<T: TemporalStore>(s: &mut T) {
        s.begin()
            .insert(tuple(["Merrie", "associate"]), Period::from_start(d("09/01/77")))
            .commit(d("08/25/77"))
            .unwrap();
        s.begin()
            .insert(tuple(["Tom", "full"]), Period::from_start(d("12/05/82")))
            .commit(d("12/01/82"))
            .unwrap();
        s.begin()
            .remove(RowSelector::tuple(tuple(["Tom", "full"])))
            .insert(tuple(["Tom", "associate"]), Period::from_start(d("12/05/82")))
            .commit(d("12/07/82"))
            .unwrap();
        s.begin()
            .set_validity(
                RowSelector::tuple(tuple(["Merrie", "associate"])),
                Period::new(d("09/01/77"), d("12/01/82")).unwrap(),
            )
            .insert(tuple(["Merrie", "full"]), Period::from_start(d("12/01/82")))
            .commit(d("12/15/82"))
            .unwrap();
        s.begin()
            .insert(tuple(["Mike", "assistant"]), Period::from_start(d("01/01/83")))
            .commit(d("01/10/83"))
            .unwrap();
        s.begin()
            .set_validity(
                RowSelector::tuple(tuple(["Mike", "assistant"])),
                Period::new(d("01/01/83"), d("03/01/84")).unwrap(),
            )
            .commit(d("02/25/84"))
            .unwrap();
    }

    #[test]
    fn agrees_with_reference_bitemporal_table() {
        let mut stored = StoredBitemporalTable::in_memory(
            faculty_schema(),
            TemporalSignature::Interval,
        );
        let mut reference = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        drive_figure_8(&mut stored);
        drive_figure_8(&mut reference);

        assert_eq!(stored.stored_tuples(), 7);
        assert_eq!(stored.current(), reference.current());
        for t in (d("01/01/77").ticks()..=d("12/31/84").ticks()).step_by(5) {
            let t = Chronon::new(t);
            assert_eq!(stored.rollback(t), reference.rollback(t), "at {t}");
        }
        // Physical rows match as multisets.
        let mut a = stored.scan_rows().unwrap();
        let mut b = reference.rows().to_vec();
        let key = |r: &BitemporalRow| {
            (
                r.tuple.clone(),
                r.validity.period().start(),
                r.validity.period().end(),
                r.tx.start(),
                r.tx.end(),
            )
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_queries_answer_the_paper() {
        let mut stored =
            StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_figure_8(&mut stored);
        // as of 12/10/82, valid at 12/05/82 → Merrie associate.
        let rows = stored.valid_at_as_of(d("12/05/82"), d("12/10/82")).unwrap();
        let merrie: Vec<_> = rows
            .iter()
            .filter(|r| r.tuple.get(0).as_str() == Some("Merrie"))
            .collect();
        assert_eq!(merrie.len(), 1);
        assert_eq!(merrie[0].tuple.get(1).as_str(), Some("associate"));
        // current timeslice at 12/05/82 → full (corrected history).
        let rows = stored.current_valid_at(d("12/05/82")).unwrap();
        let merrie: Vec<_> = rows
            .iter()
            .filter(|r| r.tuple.get(0).as_str() == Some("Merrie"))
            .collect();
        assert_eq!(merrie[0].tuple.get(1).as_str(), Some("full"));
        // overlap scan.
        let q = Period::new(d("01/01/83"), d("01/01/84")).unwrap();
        assert_eq!(stored.current_overlapping(q).unwrap().len(), 3);
    }

    #[test]
    fn durable_table_replays_after_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("chronos-table-wal-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut t = StoredBitemporalTable::open_durable(
                &path,
                7,
                faculty_schema(),
                TemporalSignature::Interval,
            )
            .unwrap();
            drive_figure_8(&mut t);
        } // dropped: only the WAL survives
        let t = StoredBitemporalTable::open_durable(
            &path,
            7,
            faculty_schema(),
            TemporalSignature::Interval,
        )
        .unwrap();
        assert_eq!(t.transactions(), 6);
        assert_eq!(t.stored_tuples(), 7);
        assert_eq!(t.last_commit(), Some(d("02/25/84")));
        let rows = t.valid_at_as_of(d("12/05/82"), d("12/10/82")).unwrap();
        assert!(rows.iter().any(|r| r.tuple.get(1).as_str() == Some("associate")));
        // Other relations' records in the same log are ignored.
        let other = StoredBitemporalTable::open_durable(
            &path,
            99,
            faculty_schema(),
            TemporalSignature::Interval,
        )
        .unwrap();
        assert_eq!(other.transactions(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_recovery_drops_only_the_torn_commit() {
        use std::io::Write;
        let mut path = std::env::temp_dir();
        path.push(format!("chronos-table-torn-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut t = StoredBitemporalTable::open_durable(
                &path,
                1,
                faculty_schema(),
                TemporalSignature::Interval,
            )
            .unwrap();
            drive_figure_8(&mut t);
        }
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x10, 0x00, 0x00, 0x00, 0xDE, 0xAD]).unwrap();
        }
        let t = StoredBitemporalTable::open_durable(
            &path,
            1,
            faculty_schema(),
            TemporalSignature::Interval,
        )
        .unwrap();
        assert_eq!(t.transactions(), 6, "intact commits survive the torn tail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_commit_leaves_no_trace() {
        let mut t =
            StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
        drive_figure_8(&mut t);
        let before = t.stored_tuples();
        let err = t
            .begin()
            .remove(RowSelector::tuple(tuple(["Ghost", "x"])))
            .commit(d("06/01/84"));
        assert!(err.is_err());
        assert_eq!(t.stored_tuples(), before);
        assert_eq!(t.transactions(), 6);
    }
}
