//! Error types for the storage layer.

use std::fmt;
use std::io;

use chronos_core::CoreError;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors arising from pages, files, logs, codecs or indexes.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// A frame or page failed its CRC-32 check.
    ChecksumMismatch {
        /// Stored checksum.
        expected: u32,
        /// Computed checksum.
        computed: u32,
    },
    /// Malformed bytes encountered while decoding.
    Corrupt(String),
    /// A page has no room for the record.
    PageFull {
        /// Bytes requested.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A record id referenced a missing page or slot.
    NoSuchRecord(String),
    /// A semantic error surfaced from the core relation model.
    Core(CoreError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::ChecksumMismatch { expected, computed } => write!(
                f,
                "checksum mismatch: stored {expected:#010x}, computed {computed:#010x}"
            ),
            StorageError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            StorageError::PageFull { needed, available } => {
                write!(f, "page full: need {needed} bytes, {available} available")
            }
            StorageError::NoSuchRecord(m) => write!(f, "no such record: {m}"),
            StorageError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<CoreError> for StorageError {
    fn from(e: CoreError) -> Self {
        StorageError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StorageError::ChecksumMismatch {
            expected: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(StorageError::PageFull {
            needed: 10,
            available: 3
        }
        .to_string()
        .contains("page full"));
    }
}
