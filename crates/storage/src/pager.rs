//! Page stores and the buffer pool.
//!
//! A [`PageStore`] owns a linear array of pages.  [`MemPager`] keeps them
//! in memory; [`FilePager`] maps them onto a file with positional I/O;
//! [`BufferPool`] caches a bounded number of frames over any store with
//! LRU eviction and dirty-page write-back.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::Arc;

use bytes::BytesMut;
use chronos_obs::Recorder;
use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PAGE_SIZE};

/// A linear array of pages with random access.
pub trait PageStore: Send {
    /// Reads page `page_no`.
    fn read_page(&self, page_no: u32) -> StorageResult<Page>;
    /// Writes a page image (the page knows its own number).
    fn write_page(&mut self, page: &Page) -> StorageResult<()>;
    /// Appends a fresh empty page, returning its number.
    fn allocate(&mut self) -> StorageResult<u32>;
    /// Number of pages in the store.
    fn num_pages(&self) -> u32;
    /// Flushes buffered state to durable storage.
    fn sync(&mut self) -> StorageResult<()> {
        Ok(())
    }
}

impl<S: PageStore + ?Sized> PageStore for &mut S {
    fn read_page(&self, page_no: u32) -> StorageResult<Page> {
        (**self).read_page(page_no)
    }
    fn write_page(&mut self, page: &Page) -> StorageResult<()> {
        (**self).write_page(page)
    }
    fn allocate(&mut self) -> StorageResult<u32> {
        (**self).allocate()
    }
    fn num_pages(&self) -> u32 {
        (**self).num_pages()
    }
    fn sync(&mut self) -> StorageResult<()> {
        (**self).sync()
    }
}

/// An in-memory page store.
#[derive(Default)]
pub struct MemPager {
    pages: Vec<BytesMut>,
}

impl MemPager {
    /// Creates an empty in-memory store.
    pub fn new() -> MemPager {
        MemPager::default()
    }
}

impl PageStore for MemPager {
    fn read_page(&self, page_no: u32) -> StorageResult<Page> {
        let bytes = self
            .pages
            .get(page_no as usize)
            .ok_or_else(|| StorageError::NoSuchRecord(format!("page {page_no}")))?;
        Page::from_bytes(bytes.clone())
    }

    fn write_page(&mut self, page: &Page) -> StorageResult<()> {
        let idx = page.page_no() as usize;
        let slot = self
            .pages
            .get_mut(idx)
            .ok_or_else(|| StorageError::NoSuchRecord(format!("page {idx}")))?;
        slot.clear();
        slot.extend_from_slice(page.as_bytes());
        Ok(())
    }

    fn allocate(&mut self) -> StorageResult<u32> {
        let page_no = self.pages.len() as u32;
        self.pages
            .push(BytesMut::from(Page::new(page_no).as_bytes()));
        Ok(page_no)
    }

    fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }
}

/// A file-backed page store using positional reads and writes.
pub struct FilePager {
    file: File,
    num_pages: u32,
}

impl FilePager {
    /// Opens (creating if necessary) a page file.
    pub fn open(path: &Path) -> StorageResult<FilePager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "page file length {len} is not a multiple of {PAGE_SIZE}"
            )));
        }
        Ok(FilePager {
            file,
            num_pages: (len / PAGE_SIZE as u64) as u32,
        })
    }
}

impl PageStore for FilePager {
    fn read_page(&self, page_no: u32) -> StorageResult<Page> {
        use std::os::unix::fs::FileExt;
        if page_no >= self.num_pages {
            return Err(StorageError::NoSuchRecord(format!("page {page_no}")));
        }
        let mut buf = BytesMut::zeroed(PAGE_SIZE);
        self.file
            .read_exact_at(&mut buf, page_no as u64 * PAGE_SIZE as u64)?;
        Page::from_bytes(buf)
    }

    fn write_page(&mut self, page: &Page) -> StorageResult<()> {
        use std::os::unix::fs::FileExt;
        if page.page_no() >= self.num_pages {
            return Err(StorageError::NoSuchRecord(format!(
                "page {}",
                page.page_no()
            )));
        }
        self.file
            .write_all_at(page.as_bytes(), page.page_no() as u64 * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn allocate(&mut self) -> StorageResult<u32> {
        use std::os::unix::fs::FileExt;
        let page_no = self.num_pages;
        let page = Page::new(page_no);
        self.file
            .write_all_at(page.as_bytes(), page_no as u64 * PAGE_SIZE as u64)?;
        self.num_pages += 1;
        Ok(page_no)
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

struct Frame {
    page: Page,
    dirty: bool,
    /// Monotone touch counter for LRU.
    last_used: u64,
}

struct PoolInner<S: PageStore> {
    store: S,
    frames: HashMap<u32, Frame>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Engine-wide instruments; disabled by default until the owning
    /// table (ultimately the `Database`) hands down a live recorder.
    recorder: Arc<Recorder>,
}

/// An LRU buffer pool over any [`PageStore`].
///
/// Callers read and mutate pages through closures so the pool controls
/// frame lifetime and dirty tracking.
pub struct BufferPool<S: PageStore> {
    inner: Mutex<PoolInner<S>>,
}

impl<S: PageStore> BufferPool<S> {
    /// Creates a pool caching at most `capacity` frames.
    pub fn new(store: S, capacity: usize) -> BufferPool<S> {
        BufferPool {
            inner: Mutex::new(PoolInner {
                store,
                frames: HashMap::new(),
                capacity: capacity.max(1),
                tick: 0,
                hits: 0,
                misses: 0,
                recorder: Arc::new(Recorder::disabled()),
            }),
        }
    }

    /// Routes physical page reads/writes into `recorder`.
    pub fn set_recorder(&self, recorder: Arc<Recorder>) {
        self.inner.lock().recorder = recorder;
    }

    /// Reads page `page_no` through the cache.
    pub fn with_page<R>(&self, page_no: u32, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        inner.touch(page_no)?;
        let frame = inner.frames.get(&page_no).expect("touched frame present");
        Ok(f(&frame.page))
    }

    /// Mutates page `page_no` through the cache, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        page_no: u32,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        inner.touch(page_no)?;
        let frame = inner
            .frames
            .get_mut(&page_no)
            .expect("touched frame present");
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Appends a fresh page, returning its number.
    pub fn allocate(&self) -> StorageResult<u32> {
        crate::fault::crash_point("pager.allocate")?;
        let mut inner = self.inner.lock();
        inner.store.allocate()
    }

    /// Number of pages in the underlying store.
    pub fn num_pages(&self) -> u32 {
        self.inner.lock().store.num_pages()
    }

    /// Writes back every dirty frame and syncs the store.
    pub fn flush(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        inner.flush_all()?;
        inner.store.sync()
    }

    /// `(hits, misses)` counters, for cache-efficiency assertions.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }
}

impl<S: PageStore> PoolInner<S> {
    /// Ensures `page_no` is resident, evicting LRU frames as needed.
    fn touch(&mut self, page_no: u32) -> StorageResult<()> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(frame) = self.frames.get_mut(&page_no) {
            frame.last_used = tick;
            self.hits += 1;
            return Ok(());
        }
        self.misses += 1;
        crate::fault::crash_point("pager.read.miss")?;
        if self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        self.recorder.count(|m| &m.pager_page_reads);
        let page = self.store.read_page(page_no)?;
        self.frames.insert(
            page_no,
            Frame {
                page,
                dirty: false,
                last_used: tick,
            },
        );
        Ok(())
    }

    fn evict_one(&mut self) -> StorageResult<()> {
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(no, _)| *no)
            .expect("eviction only when non-empty");
        let frame = self.frames.remove(&victim).expect("victim present");
        if frame.dirty {
            self.recorder.count(|m| &m.pager_page_writes);
            self.store.write_page(&frame.page)?;
        }
        Ok(())
    }

    fn flush_all(&mut self) -> StorageResult<()> {
        for frame in self.frames.values_mut() {
            if frame.dirty {
                self.recorder.count(|m| &m.pager_page_writes);
                self.store.write_page(&frame.page)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chronos-pager-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn mem_pager_round_trip() {
        let mut m = MemPager::new();
        let no = m.allocate().unwrap();
        let mut page = m.read_page(no).unwrap();
        let slot = page.insert(b"hello").unwrap();
        m.write_page(&page).unwrap();
        let again = m.read_page(no).unwrap();
        assert_eq!(again.get(slot).unwrap(), b"hello");
        assert!(m.read_page(99).is_err());
    }

    #[test]
    fn file_pager_persists_across_reopen() {
        let path = temp_path("persist");
        let _ = std::fs::remove_file(&path);
        let slot;
        {
            let mut fp = FilePager::open(&path).unwrap();
            let no = fp.allocate().unwrap();
            assert_eq!(no, 0);
            let mut page = fp.read_page(0).unwrap();
            slot = page.insert(b"durable").unwrap();
            fp.write_page(&page).unwrap();
            fp.sync().unwrap();
        }
        {
            let fp = FilePager::open(&path).unwrap();
            assert_eq!(fp.num_pages(), 1);
            let page = fp.read_page(0).unwrap();
            assert_eq!(page.get(slot).unwrap(), b"durable");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pager_rejects_torn_file() {
        let path = temp_path("torn");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 100]).unwrap();
        assert!(FilePager::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffer_pool_caches_and_evicts() {
        let mut m = MemPager::new();
        for _ in 0..6 {
            m.allocate().unwrap();
        }
        let pool = BufferPool::new(m, 2);
        // Touch pages 0 and 1: two misses.
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(1, |_| ()).unwrap();
        // Re-touch 0: hit.
        pool.with_page(0, |_| ()).unwrap();
        // Touch 2: evicts LRU (page 1).
        pool.with_page(2, |_| ()).unwrap();
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 3));
        // Dirty page survives eviction via write-back.
        let slot = pool
            .with_page_mut(0, |p| p.insert(b"cached").unwrap())
            .unwrap();
        pool.with_page(3, |_| ()).unwrap();
        pool.with_page(4, |_| ()).unwrap(); // page 0 evicted, written back
        let data = pool
            .with_page(0, |p| p.get(slot).map(<[u8]>::to_vec))
            .unwrap()
            .unwrap();
        assert_eq!(data, b"cached");
    }

    #[test]
    fn buffer_pool_flush_persists_to_file() {
        let path = temp_path("flush");
        let _ = std::fs::remove_file(&path);
        {
            let mut fp = FilePager::open(&path).unwrap();
            fp.allocate().unwrap();
            let pool = BufferPool::new(fp, 4);
            pool.with_page_mut(0, |p| p.insert(b"flushed").unwrap())
                .unwrap();
            pool.flush().unwrap();
        }
        let fp = FilePager::open(&path).unwrap();
        let page = fp.read_page(0).unwrap();
        assert_eq!(page.live_records(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
