//! Quantitative experiments behind the paper's implementation claims.
//!
//! ```text
//! cargo run -p chronos-bench --bin experiments --release
//! ```
//!
//! The paper's evaluation is analytical; where it makes implementation
//! claims, these experiments measure them (experiment ids from
//! DESIGN.md §3):
//!
//! * **T1 (E14)** — storing a rollback relation as a cube of full
//!   snapshots is "impractical, due to excessive duplication" compared
//!   with tuple timestamping;
//! * **T2 (E15)** — the same claim for temporal relations (snapshot
//!   historical states vs a bitemporal table);
//! * **T3 (E16)** — rollback (`as of`) query latency: linear scan vs the
//!   transaction-time interval tree;
//! * **T4 (E17)** — historical timeslice latency: scan vs the valid-time
//!   interval tree;
//! * **T5 (E18)** — the measured capability matrix of the four database
//!   classes (Figure 10/11, measured rather than asserted);
//! * **T6 (E20)** — coalescing cost and compression;
//! * **T7 (E19)** — TQuel end-to-end latency for the paper's four query
//!   shapes;
//! * **T8** — the bitemporal query cache;
//! * **T9** — observability: the engine's own counters quantify the
//!   checkpoint-interval trade-off (transactions replayed per probe),
//!   and the disabled recorder is verified to cost nothing;
//! * **T10** — the operational surface: `/metrics` scrape latency under
//!   concurrent query load, and the slow-query wrapper's overhead at
//!   the disabled threshold (`u64::MAX`);
//! * **T11** — temporal introspection: the background stats sampler's
//!   overhead on the timeslice workload, and the latency of querying
//!   the telemetry itself (`retrieve` over `sys$stats`);
//! * **T12** — the concurrent MVCC query service: closed-loop snapshot
//!   readers over loopback and group-commit write rounds;
//! * **T13** — concurrency-aware observability: the full tracing +
//!   telemetry stack (enabled recorder, per-statement trace ids, the
//!   background sampler) priced against a disabled-recorder twin under
//!   the 8-writer group-commit workload, with the writer-queue depth
//!   trajectory and the per-stage commit latency decomposition;
//! * **T14** — workload analytics: query fingerprinting plus `analyze`
//!   statistics collection priced against a disabled-recorder twin on a
//!   read-dominant workload over a 6000-version temporal relation,
//!   with the fingerprint store's dedup verified (one entry for every
//!   literal variation of the same statement shape);
//! * **T16** — frozen segments: bytes/version and as-of point-query
//!   latency of the delta-coded, mmap-backed segment format against
//!   the pure paged heap, swept over version-chain length (the
//!   tentpole claim: ≤1.3× duplication and ≥2× point-lookup speedup
//!   at chain length 32), recorded in `BENCH_storage.json`;
//! * **T17** — physical storage shape: version-chain length swept
//!   against the measured duplication factor and bytes/version of the
//!   paged heap (the numbers `sys$pages`, `/storage`, and `analyze`
//!   report), recorded in `BENCH_storage.json`.
//!
//! Set `EXPERIMENTS_ONLY=<ids>` (comma-separated, e.g. `T9,T10,T11`) to
//! run a subset.

use std::sync::Arc;
use std::time::Instant;

use chronos_bench::workload::{self, WorkloadSpec};
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::prelude::*;
use chronos_core::relation::StaticOp;
use chronos_db::Database;
use chronos_obs::Recorder;
use chronos_storage::codec;
use chronos_storage::table::StoredBitemporalTable;

fn heading(s: &str) {
    println!("\n{}", "-".repeat(72));
    println!("{s}");
    println!("{}", "-".repeat(72));
}

/// Median-of-5 wall time per call, in nanoseconds.
fn time_ns(iters: u32, mut f: impl FnMut()) -> u64 {
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_nanos() as u64 / u64::from(iters));
    }
    samples.sort_unstable();
    samples[2]
}

fn approx_row_bytes(t: &Tuple) -> usize {
    let mut buf = Vec::new();
    codec::put_tuple(&mut buf, t);
    // valid + tx stamps ≈ 20 bytes of varints/tags.
    buf.len() + 20
}

fn main() {
    // A crash-matrix child re-execs this binary with the fault armed;
    // it runs the workload and never returns.
    chronos_bench::fault_matrix::maybe_run_child();
    println!("ChronosDB experiments (paper: Snodgrass & Ahn, SIGMOD 1985)");
    let only = std::env::var("EXPERIMENTS_ONLY").ok();
    let want = |id: &str| {
        only.as_deref()
            .is_none_or(|o| o.split(',').any(|p| p.trim().eq_ignore_ascii_case(id)))
    };
    if want("T1") {
        t1_rollback_storage();
    }
    if want("T1b") {
        t1b_checkpoint_sweep();
    }
    if want("T2") {
        t2_temporal_storage();
    }
    if want("T3") {
        t3_rollback_query();
    }
    if want("T4") {
        t4_timeslice();
    }
    if want("T5") {
        t5_capability_matrix();
    }
    if want("T6") {
        t6_coalesce();
    }
    if want("T7") {
        t7_tquel_throughput();
    }
    if want("T8") {
        t8_query_cache();
    }
    let mut t9_rows = None;
    if want("T9") {
        t9_rows = Some(t9_observability());
    }
    let mut t10_stats = None;
    if want("T10") {
        t10_stats = Some(t10_operational_surface());
    }
    let mut t11_stats = None;
    if want("T11") {
        t11_stats = Some(t11_temporal_introspection());
    }
    if want("T12") {
        t12_concurrent_service();
    }
    let mut t13_stats = None;
    if want("T13") {
        t13_stats = Some(t13_observability_overhead());
    }
    let mut t14_stats = None;
    if want("T14") {
        t14_stats = Some(t14_workload_analytics());
    }
    let mut t17_rows = None;
    if want("T17") {
        t17_rows = Some(t17_physical_storage());
    }
    let mut t16_rows = None;
    if want("T16") {
        t16_rows = Some(t16_frozen_segments());
    }
    if t17_rows.is_some() || t16_rows.is_some() {
        write_bench_storage_json(
            t17_rows.as_deref().unwrap_or(&[]),
            t16_rows.as_deref().unwrap_or(&[]),
        );
    }
    if want("faults") {
        faults_matrix();
    }
    if t9_rows.is_some()
        || t10_stats.is_some()
        || t11_stats.is_some()
        || t13_stats.is_some()
        || t14_stats.is_some()
    {
        write_bench_observability_json(
            t9_rows.as_deref().unwrap_or(&[]),
            t10_stats.as_ref(),
            t11_stats.as_ref(),
            t13_stats.as_ref(),
            t14_stats.as_ref(),
        );
    }
    println!("\nDone.  These tables are recorded in EXPERIMENTS.md.");
}

// ---------------------------------------------------------------------
// faults — the crash/unwind fault matrix (EXPERIMENTS_ONLY=faults)
// ---------------------------------------------------------------------

/// Runs the full fault matrix: every registered crash site crashes a
/// re-exec'd child mid-workload and the recovered state is verified
/// against the oracle, then every site is re-run in unwind (injected
/// `Err`) mode in-process.  Exits non-zero if any site fails.
fn faults_matrix() {
    heading("faults — deterministic fault-injection matrix (crash + unwind)");
    let exe = std::env::current_exe().expect("own executable path");
    println!(
        "crash matrix ({} sites):",
        chronos_obs::fault::CRASH_SITES.len()
    );
    let crash = chronos_bench::fault_matrix::run_crash_matrix(&exe, &[]);
    match &crash {
        Ok(lines) => {
            for l in lines {
                println!("  {l}");
            }
        }
        Err(e) => eprintln!("  FAILED: {e}"),
    }
    println!(
        "unwind matrix ({} sites):",
        chronos_obs::fault::CRASH_SITES.len()
    );
    let unwind = chronos_bench::fault_matrix::run_unwind_matrix();
    match &unwind {
        Ok(lines) => {
            for l in lines {
                println!("  {l}");
            }
        }
        Err(e) => eprintln!("  FAILED: {e}"),
    }
    if crash.is_err() || unwind.is_err() {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------
// T1 — snapshot cube vs tuple timestamping (rollback relations)
// ---------------------------------------------------------------------

fn rollback_toggle_history(transactions: usize, entities: usize) -> Vec<(Chronon, StaticOp)> {
    let tuples = workload::entity_tuples(entities);
    let mut present = vec![false; entities];
    let mut out = Vec::with_capacity(transactions);
    for i in 0..transactions {
        // Grow the relation for the first half, then churn.
        let idx = if i < entities { i } else { (i * 7) % entities };
        let op = if present[idx] {
            present[idx] = false;
            StaticOp::Delete(tuples[idx].clone())
        } else {
            present[idx] = true;
            StaticOp::Insert(tuples[idx].clone())
        };
        out.push((Chronon::new(1000 + i as i64), op));
    }
    out
}

fn t1_rollback_storage() {
    heading("T1 (E14): rollback storage — snapshot cube vs tuple timestamping");
    println!(
        "{:>6} | {:>12} | {:>12} | {:>8} | {:>10} | {:>10}",
        "txns", "cube tuples", "ts tuples", "ratio", "cube ms", "ts ms"
    );
    for &n in &[64usize, 256, 1024, 4096] {
        let history = rollback_toggle_history(n, n / 2);
        let schema = chronos_core::schema::faculty_schema();

        let start = Instant::now();
        let mut cube = SnapshotRollback::new(schema.clone());
        for (t, op) in &history {
            cube.commit(*t, std::slice::from_ref(op)).expect("valid");
        }
        let cube_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let mut ts = TimestampedRollback::new(schema);
        for (t, op) in &history {
            ts.commit(*t, std::slice::from_ref(op)).expect("valid");
        }
        let ts_ms = start.elapsed().as_secs_f64() * 1e3;

        let ratio = cube.stored_tuples() as f64 / ts.stored_tuples().max(1) as f64;
        println!(
            "{:>6} | {:>12} | {:>12} | {:>7.1}x | {:>10.2} | {:>10.2}",
            n,
            cube.stored_tuples(),
            ts.stored_tuples(),
            ratio,
            cube_ms,
            ts_ms
        );
        // Borrowed accessor: compare against the cube's live state
        // without cloning the whole snapshot out of the store.
        assert_eq!(*cube.current_ref().expect("committed"), ts.current());
    }
    println!("(cube tuples grow quadratically with history; tuple timestamping is linear)");
}

// ---------------------------------------------------------------------
// T1b — E14b: checkpoint interval sweep
// ---------------------------------------------------------------------

/// One measured row of the E14b sweep (serialized to BENCH_rollback.json).
struct SweepRow {
    transactions: usize,
    interval: usize,
    rollback_ns: u64,
    speedup: f64,
    checkpoints: usize,
    checkpoint_tuples: usize,
}

fn t1b_checkpoint_sweep() {
    heading("T1b (E14b): checkpoint interval sweep — rollback latency vs space");
    println!(
        "{:>6} | {:>9} | {:>12} | {:>8} | {:>11} | {:>12}",
        "txns", "K", "rollback µs", "speedup", "checkpoints", "ckpt tuples"
    );
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut baseline_rows: Vec<SweepRow> = Vec::new();
    for &n in &[1024usize, 4096] {
        let history = rollback_toggle_history(n, n / 2);
        let schema = chronos_core::schema::faculty_schema();
        // Probe mid-history: early probes flatter the checkpointed store
        // (less log to search), late probes flatter nothing — mid is the
        // representative regime for `as of` auditing queries.
        let probe = Chronon::new(1000 + (n as i64) / 2);

        let mut ts = TimestampedRollback::new(schema.clone());
        for (t, op) in &history {
            ts.commit(*t, std::slice::from_ref(op)).expect("valid");
        }
        let expected = ts.rollback(probe);
        let scan_ns = time_ns(10, || {
            std::hint::black_box(ts.rollback(probe));
        });
        println!(
            "{:>6} | {:>9} | {:>12.1} | {:>8} | {:>11} | {:>12}",
            n,
            "scan",
            scan_ns as f64 / 1e3,
            "1.0x",
            "—",
            "—"
        );
        baseline_rows.push(SweepRow {
            transactions: n,
            interval: 0, // 0 = the unaccelerated full-scan baseline
            rollback_ns: scan_ns,
            speedup: 1.0,
            checkpoints: 0,
            checkpoint_tuples: 0,
        });

        for &k in &[1usize, 16, 64, 256] {
            let mut ck = CheckpointedRollback::with_interval(schema.clone(), k);
            for (t, op) in &history {
                ck.commit(*t, std::slice::from_ref(op)).expect("valid");
            }
            assert_eq!(ck.rollback(probe), expected, "equivalence at K={k}");
            let ck_ns = time_ns(10, || {
                std::hint::black_box(ck.rollback(probe));
            });
            let speedup = scan_ns as f64 / ck_ns.max(1) as f64;
            println!(
                "{:>6} | {:>9} | {:>12.1} | {:>7.1}x | {:>11} | {:>12}",
                n,
                k,
                ck_ns as f64 / 1e3,
                speedup,
                ck.checkpoints(),
                ck.checkpoint_tuples()
            );
            rows.push(SweepRow {
                transactions: n,
                interval: k,
                rollback_ns: ck_ns,
                speedup,
                checkpoints: ck.checkpoints(),
                checkpoint_tuples: ck.checkpoint_tuples(),
            });
        }
    }
    println!("(K trades replay latency against checkpoint space: K=1 is the paper's");
    println!(" snapshot cube, large K approaches pure log replay)");

    // The acceptance bar for the acceleration layer: at 4096
    // transactions the checkpointed reconstruction beats the full scan
    // by at least 5x at some swept K.
    let best = rows
        .iter()
        .filter(|r| r.transactions == 4096)
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    assert!(
        best >= 5.0,
        "checkpointed rollback speedup at 4096 txns was only {best:.1}x"
    );

    write_bench_rollback_json(&baseline_rows, &rows);
}

/// Emits the sweep as `BENCH_rollback.json` next to the working
/// directory, for tooling that tracks the acceleration layer across
/// commits.  Hand-rolled JSON: the workspace deliberately has no serde.
fn write_bench_rollback_json(baselines: &[SweepRow], rows: &[SweepRow]) {
    let mut out = String::from("{\n  \"experiment\": \"E14b\",\n");
    out.push_str("  \"description\": \"checkpointed rollback reconstruction sweep\",\n");
    out.push_str("  \"baseline\": \"timestamped full-scan rollback (interval 0)\",\n");
    out.push_str("  \"rows\": [\n");
    let all: Vec<&SweepRow> = baselines.iter().chain(rows.iter()).collect();
    for (i, r) in all.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"transactions\": {}, \"interval\": {}, \"rollback_ns\": {}, \
             \"speedup\": {:.2}, \"checkpoints\": {}, \"checkpoint_tuples\": {}}}{}\n",
            r.transactions,
            r.interval,
            r.rollback_ns,
            r.speedup,
            r.checkpoints,
            r.checkpoint_tuples,
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write("BENCH_rollback.json", &out) {
        Ok(()) => println!("(wrote BENCH_rollback.json)"),
        Err(e) => println!("(could not write BENCH_rollback.json: {e})"),
    }
}

// ---------------------------------------------------------------------
// T2 — snapshot historical states vs bitemporal table
// ---------------------------------------------------------------------

fn t2_temporal_storage() {
    heading("T2 (E15): temporal storage — snapshot states vs bitemporal table");
    println!(
        "{:>6} | {:>12} | {:>13} | {:>8} | {:>10} | {:>10} | {:>10}",
        "txns", "cube tuples", "bitemp tuples", "ratio", "cube MB", "bitemp MB", "bitemp ms"
    );
    for &n in &[64usize, 256, 1024, 4096] {
        let w = workload::generate(&WorkloadSpec {
            entities: (n / 4).max(8),
            transactions: n,
            ops_per_tx: 2,
            correction_pct: 25,
            seed: 42,
        });
        let mut cube = SnapshotTemporal::new(w.schema.clone(), TemporalSignature::Interval);
        for tx in &w.transactions {
            cube.commit(tx.tx_time, &tx.ops).expect("valid");
        }
        let start = Instant::now();
        let mut table = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
        for tx in &w.transactions {
            table.commit(tx.tx_time, &tx.ops).expect("valid");
        }
        let bitemp_ms = start.elapsed().as_secs_f64() * 1e3;

        let row_bytes = approx_row_bytes(&tuple(["prof00000", "associate"])) as f64;
        println!(
            "{:>6} | {:>12} | {:>13} | {:>7.1}x | {:>10.3} | {:>10.3} | {:>10.2}",
            n,
            cube.stored_tuples(),
            table.stored_tuples(),
            cube.stored_tuples() as f64 / table.stored_tuples().max(1) as f64,
            cube.stored_tuples() as f64 * row_bytes / 1e6,
            table.stored_tuples() as f64 * row_bytes / 1e6,
            bitemp_ms
        );
        assert_eq!(cube.current(), table.current());
    }
}

// ---------------------------------------------------------------------
// T3 — rollback query latency: scan vs transaction-time index
// ---------------------------------------------------------------------

fn build_pair(n: usize) -> (BitemporalTable, StoredBitemporalTable) {
    let w = workload::generate(&WorkloadSpec {
        entities: (n / 4).max(8),
        transactions: n,
        ops_per_tx: 2,
        correction_pct: 25,
        seed: 7,
    });
    let mut reference = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
    let mut stored =
        StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
    for tx in &w.transactions {
        reference.commit(tx.tx_time, &tx.ops).expect("valid");
        stored.try_commit(tx.tx_time, &tx.ops).expect("valid");
    }
    (reference, stored)
}

fn t3_rollback_query() {
    heading("T3 (E16): rollback (`as of`) access path — heap scan vs tx interval tree");
    println!(
        "{:>6} | {:>8} | {:>8} | {:>12} | {:>12} | {:>8}",
        "txns", "rows", "alive", "scan µs", "indexed µs", "speedup"
    );
    for &n in &[256usize, 1024, 4096, 16384] {
        let (reference, stored) = build_pair(n);
        // Probe early in the history, where most stored versions are
        // dead: this is exactly the case the paper's rollback operation
        // must stay cheap in as history accumulates.
        let probe = Chronon::new(1000 + (n as i64) / 8);
        assert_eq!(reference.rollback(probe), stored.rollback(probe));
        let alive = stored.rows_at(probe).expect("ok").len();
        // Scan path: decode every stored version, keep those alive at
        // the probe (what a store without a tx index must do).
        let scan_ns = time_ns(10, || {
            let rows = stored.scan_rows().expect("ok");
            let alive: Vec<_> = rows.into_iter().filter(|r| r.tx.contains(probe)).collect();
            std::hint::black_box(alive);
        });
        // Index path: stab the transaction-time interval tree.
        let index_ns = time_ns(10, || {
            std::hint::black_box(stored.rows_at(probe).expect("ok"));
        });
        println!(
            "{:>6} | {:>8} | {:>8} | {:>12.1} | {:>12.1} | {:>7.1}x",
            n,
            stored.stored_tuples(),
            alive,
            scan_ns as f64 / 1e3,
            index_ns as f64 / 1e3,
            scan_ns as f64 / index_ns.max(1) as f64
        );
    }
    println!("(the index touches only versions alive at the probe; the scan decodes");
    println!(" the whole history, so the gap widens as history accumulates)");
}

// ---------------------------------------------------------------------
// T4 — timeslice latency: scan vs valid-time interval tree
// ---------------------------------------------------------------------

fn t4_timeslice() {
    heading("T4 (E17): historical timeslice — heap scan vs valid interval tree");
    println!(
        "{:>6} | {:>8} | {:>8} | {:>12} | {:>12} | {:>8}",
        "txns", "rows", "valid", "scan µs", "indexed µs", "speedup"
    );
    for &n in &[256usize, 1024, 4096, 16384] {
        let (_, stored) = build_pair(n);
        // Probe early in valid time: most current rows are not yet valid
        // there, so a good access path touches few of them.
        let probe = Chronon::new(940);
        let hits = stored.current_valid_at(probe).expect("ok").len();
        let scan_ns = time_ns(10, || {
            let rows = stored.scan_rows().expect("ok");
            let valid: Vec<_> = rows
                .into_iter()
                .filter(|r| r.is_current() && r.validity.valid_at(probe))
                .collect();
            std::hint::black_box(valid);
        });
        let index_ns = time_ns(10, || {
            std::hint::black_box(stored.current_valid_at(probe).expect("ok"));
        });
        println!(
            "{:>6} | {:>8} | {:>8} | {:>12.1} | {:>12.1} | {:>7.1}x",
            n,
            stored.stored_tuples(),
            hits,
            scan_ns as f64 / 1e3,
            index_ns as f64 / 1e3,
            scan_ns as f64 / index_ns.max(1) as f64
        );
    }
}

// ---------------------------------------------------------------------
// T5 — the measured capability matrix
// ---------------------------------------------------------------------

fn t5_capability_matrix() {
    heading("T5 (E18): measured capability matrix of the four classes (Figure 10/11)");
    let clock = Arc::new(ManualClock::new(Chronon::new(100)));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run(
            r#"
        create s_rel (name = str, rank = str) as static
        create r_rel (name = str, rank = str) as rollback
        create h_rel (name = str, rank = str) as historical
        create t_rel (name = str, rank = str) as temporal
    "#,
        )
        .expect("create");
    for rel in ["s_rel", "r_rel", "h_rel", "t_rel"] {
        clock.tick(1);
        db.session()
            .run(&format!(
                r#"append to {rel} (name = "Merrie", rank = "full")"#
            ))
            .expect("append");
    }
    println!(
        "{:>16} | {:>12} | {:>14} | {:>16}",
        "class", "static query", "rollback query", "historical query"
    );
    let probe = chronos_core::calendar::Date::from_chronon(Chronon::new(150));
    for rel in ["s_rel", "r_rel", "h_rel", "t_rel"] {
        let stat = db
            .session()
            .query(&format!("range of v is {rel} retrieve (v.rank)"))
            .is_ok();
        let roll = db
            .session()
            .query(&format!(
                r#"range of v is {rel} retrieve (v.rank) as of "{probe}""#
            ))
            .is_ok();
        let hist = db
            .session()
            .query(&format!(
                r#"range of v is {rel} retrieve (v.rank) when v overlap "{probe}""#
            ))
            .is_ok();
        let class = db.classify(rel).expect("classified");
        let mark = |b: bool| if b { "✓" } else { "—" };
        println!(
            "{:>16} | {:>12} | {:>14} | {:>16}",
            class.to_string(),
            mark(stat),
            mark(roll),
            mark(hist)
        );
    }
    println!("(matches Figure 10: rollback ⇔ transaction time, historical ⇔ valid time)");
}

// ---------------------------------------------------------------------
// T6 — coalescing
// ---------------------------------------------------------------------

fn t6_coalesce() {
    heading("T6 (E20): coalescing cost and compression vs fragmentation");
    println!(
        "{:>10} | {:>8} | {:>8} | {:>12} | {:>8}",
        "fragments", "rows in", "rows out", "compression", "ms"
    );
    for &frags in &[1usize, 2, 8, 32] {
        let rel = workload::fragmented_relation(500, frags);
        let start = Instant::now();
        let out = chronos_algebra::coalesce::coalesce(&rel).expect("coalesces");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>10} | {:>8} | {:>8} | {:>11.1}x | {:>8.2}",
            frags,
            rel.len(),
            out.len(),
            rel.len() as f64 / out.len() as f64,
            ms
        );
        assert!(chronos_algebra::coalesce::is_coalesced(&out));
    }
}

// ---------------------------------------------------------------------
// T7 — TQuel end-to-end latency
// ---------------------------------------------------------------------

fn t7_tquel_throughput() {
    heading("T7 (E19): TQuel end-to-end latency for the paper's query shapes");
    let clock = Arc::new(ManualClock::new(Chronon::new(900)));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    for i in 0..200 {
        clock.tick(1);
        db.session()
            .run(&format!(
                r#"append to faculty (name = "prof{i:05}", rank = "assistant")
                   valid from "{}" to forever"#,
                chronos_core::calendar::Date::from_chronon(Chronon::new(900 + i))
            ))
            .expect("append");
    }
    for i in 0..100 {
        clock.tick(1);
        db.session()
            .run(&format!(
                r#"range of f is faculty
                   replace f (rank = "associate")
                   valid from "{}" to forever
                   where f.name = "prof{i:05}""#,
                chronos_core::calendar::Date::from_chronon(Chronon::new(1200 + i))
            ))
            .expect("replace");
    }
    let shapes: &[(&str, String)] = &[
        (
            "static projection",
            r#"range of f is faculty retrieve (f.rank) where f.name = "prof00007""#.to_string(),
        ),
        (
            "rollback (as of)",
            format!(
                r#"range of f is faculty retrieve (f.rank) where f.name = "prof00007" as of "{}""#,
                chronos_core::calendar::Date::from_chronon(Chronon::new(1210))
            ),
        ),
        (
            "historical (when)",
            format!(
                r#"range of f is faculty retrieve (f.rank)
                   where f.name = "prof00007"
                   when f overlap "{}""#,
                chronos_core::calendar::Date::from_chronon(Chronon::new(1100))
            ),
        ),
        (
            "bitemporal join",
            format!(
                r#"range of f1 is faculty
                   range of f2 is faculty
                   retrieve (f1.rank)
                   where f1.name = "prof00007" and f2.name = "prof00009"
                   when f1 overlap start of f2
                   as of "{}""#,
                chronos_core::calendar::Date::from_chronon(Chronon::new(1300))
            ),
        ),
    ];
    println!(
        "{:>20} | {:>12} | {:>6}",
        "query shape", "latency µs", "rows"
    );
    for (name, src) in shapes {
        let rows = db.session().query(src).expect("query").len();
        let mut session = db.session();
        let ns = time_ns(10, || {
            std::hint::black_box(session.query(src).expect("query"));
        });
        println!("{:>20} | {:>12.1} | {:>6}", name, ns as f64 / 1e3, rows);
    }
}

// ---------------------------------------------------------------------
// T8 — the bitemporal query cache
// ---------------------------------------------------------------------

fn t8_query_cache() {
    heading("T8: bitemporal query cache — repeated retrieves at one coordinate");
    let build = || {
        let clock = Arc::new(ManualClock::new(Chronon::new(900)));
        let mut db = Database::in_memory(clock.clone());
        db.session()
            .run("create faculty (name = str, rank = str) as temporal")
            .expect("create");
        for i in 0..300 {
            clock.tick(1);
            db.session()
                .run(&format!(
                    r#"append to faculty (name = "prof{i:05}", rank = "assistant")
                       valid from "{}" to forever"#,
                    chronos_core::calendar::Date::from_chronon(Chronon::new(900 + i))
                ))
                .expect("append");
        }
        db
    };
    let as_of = chronos_core::calendar::Date::from_chronon(Chronon::new(1100));
    let query = format!(
        r#"range of f is faculty retrieve (f.rank) where f.name = "prof00007" as of "{as_of}""#
    );

    let mut cold = build();
    cold.set_cache_capacity(0); // cache disabled: every retrieve rescans
    let expected = cold.session().query(&query).expect("query");
    let mut session_src = build();
    session_src.set_cache_capacity(0);
    let cold_ns = {
        let mut s = session_src.session();
        time_ns(20, || {
            std::hint::black_box(s.query(&query).expect("query"));
        })
    };

    let mut warm = build();
    warm.session().query(&query).expect("warm the cache");
    let warm_ns = {
        let mut s = warm.session();
        time_ns(20, || {
            std::hint::black_box(s.query(&query).expect("query"));
        })
    };
    assert_eq!(warm.session().query(&query).expect("query"), expected);
    let stats = warm.engine_stats();
    println!(
        "{:>12} | {:>12} | {:>8} | {:>6} | {:>6} | {:>7} | {:>7}",
        "uncached µs", "cached µs", "speedup", "hits", "misses", "entries", "epochs"
    );
    println!(
        "{:>12.1} | {:>12.1} | {:>7.1}x | {:>6} | {:>6} | {:>7} | {:>7}",
        cold_ns as f64 / 1e3,
        warm_ns as f64 / 1e3,
        cold_ns as f64 / warm_ns.max(1) as f64,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache_entries,
        stats.cache.epoch_bumps
    );
    // The recorder mirrors the cache counters, so both surfaces agree.
    assert_eq!(stats.metrics.cache_hits, stats.cache.hits);
    assert_eq!(stats.metrics.cache_misses, stats.cache.misses);
    println!("(the cache serves the scan behind an Arc; commits bump the relation's");
    println!(" epoch, so modified relations are rescanned on next retrieve)");
}

// ---------------------------------------------------------------------
// T9 — observability: counters quantify the access-path trade-offs
// ---------------------------------------------------------------------

/// One measured row of the T9 sweep (serialized to
/// BENCH_observability.json).
struct ObsRow {
    transactions: usize,
    interval: usize,
    txns_replayed: u64,
    checkpoint_hits: u64,
    rollback_ns: u64,
}

fn t9_observability() -> Vec<ObsRow> {
    heading("T9: observability — replayed transactions per checkpoint interval");
    let n = 2048usize;
    let w = workload::generate(&WorkloadSpec {
        entities: (n / 4).max(8),
        transactions: n,
        ops_per_tx: 2,
        correction_pct: 25,
        seed: 7,
    });
    let probe = Chronon::new(1000 + (n as i64) / 2);
    println!(
        "{:>6} | {:>9} | {:>14} | {:>10} | {:>12}",
        "txns", "K", "txns replayed", "ckpt hits", "rollback µs"
    );
    let mut rows: Vec<ObsRow> = Vec::new();
    for &k in &[1usize, 16, 64, 256] {
        let mut stored =
            StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
        for tx in &w.transactions {
            stored.try_commit(tx.tx_time, &tx.ops).expect("valid");
        }
        stored.set_checkpoint_interval(k).expect("rebuild");
        let recorder = Arc::new(Recorder::new());
        stored.set_recorder(Arc::clone(&recorder));
        let before = recorder.snapshot();
        stored.try_rollback_checkpointed(probe).expect("rollback");
        let after = recorder.snapshot();
        let replayed = after.rollback_txns_replayed - before.rollback_txns_replayed;
        let hits = after.rollback_checkpoint_hits - before.rollback_checkpoint_hits;
        // The counter is bounded by construction: a checkpoint lands
        // every K commits, so a probe replays at most K − 1 of them.
        assert!(
            (replayed as usize) < k.max(2),
            "replayed {replayed} transactions at K={k}"
        );
        let ns = time_ns(10, || {
            std::hint::black_box(stored.try_rollback_checkpointed(probe).expect("rollback"));
        });
        println!(
            "{:>6} | {:>9} | {:>14} | {:>10} | {:>12.1}",
            n,
            k,
            replayed,
            hits,
            ns as f64 / 1e3
        );
        rows.push(ObsRow {
            transactions: n,
            interval: k,
            txns_replayed: replayed,
            checkpoint_hits: hits,
            rollback_ns: ns,
        });
    }
    println!("(replayed-per-probe is the latency side of the E14b space trade-off,");
    println!(" read off the engine's own counters rather than re-derived)");
    overhead_check();
    rows
}

// ---------------------------------------------------------------------
// T10 — the operational surface: scrape latency and slow-log overhead
// ---------------------------------------------------------------------

/// The T10 measurements (serialized to BENCH_observability.json).
struct T10Stats {
    scrapes: usize,
    scrape_p50_ns: u64,
    scrape_p99_ns: u64,
    statements: u32,
    slowlog_disabled_overhead_ratio: f64,
}

fn t10_operational_surface() -> T10Stats {
    heading("T10: operational surface — /metrics scrape latency, slow-log overhead");
    let clock = Arc::new(ManualClock::new(Chronon::new(900)));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    for i in 0..200 {
        clock.tick(1);
        db.session()
            .run(&format!(
                r#"append to faculty (name = "prof{i:05}", rank = "assistant")
                   valid from "{}" to forever"#,
                chronos_core::calendar::Date::from_chronon(Chronon::new(900 + i))
            ))
            .expect("append");
    }
    let as_of = chronos_core::calendar::Date::from_chronon(Chronon::new(1000));
    let query = format!(
        r#"range of f is faculty retrieve (f.rank) where f.name = "prof00007" as of "{as_of}""#
    );

    // Scrape latency: a second thread GETs /metrics in a loop while
    // this thread serves it a steady diet of retrieves.  The exporter
    // reads only `Arc`-shared atomics and short-lived mutexes, so it
    // never borrows the database itself.
    let server = db.serve_observability("127.0.0.1:0").expect("serve");
    let addr = server.addr().to_string();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let (addr, stop) = (addr.clone(), Arc::clone(&stop));
        std::thread::spawn(move || -> Vec<u64> {
            let mut lat = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let start = Instant::now();
                let (status, body) = chronos_obs::http_get(&addr, "/metrics").expect("scrape");
                lat.push(start.elapsed().as_nanos() as u64);
                assert_eq!(status, 200, "scrape failed mid-load");
                assert!(body.contains("chronos_"), "scrape body lost its metrics");
            }
            lat
        })
    };
    let load_until = Instant::now() + std::time::Duration::from_millis(400);
    let mut queries = 0usize;
    {
        let mut session = db.session();
        while Instant::now() < load_until {
            std::hint::black_box(session.query(&query).expect("query"));
            queries += 1;
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut lat = scraper.join().expect("scraper thread");
    server.shutdown();
    lat.sort_unstable();
    assert!(!lat.is_empty(), "no scrapes completed under load");
    let p50 = lat[lat.len() / 2];
    let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
    println!(
        "{:>8} | {:>8} | {:>13} | {:>13}",
        "queries", "scrapes", "scrape p50 µs", "scrape p99 µs"
    );
    println!(
        "{:>8} | {:>8} | {:>13.1} | {:>13.1}",
        queries,
        lat.len(),
        p50 as f64 / 1e3,
        p99 as f64 / 1e3
    );

    // Slow-log overhead: the monitored wrapper at the disabled
    // threshold (the default, u64::MAX) against the plain execute
    // path.  Interleaved min-of-9, same discipline as overhead_check.
    let retrieve = format!(r#"retrieve (f.rank) where f.name = "prof00007" as of "{as_of}""#);
    let stmt = chronos_tquel::parser::parse_statement(&retrieve).expect("parse");
    assert_eq!(
        db.recorder().slowlog().threshold_ns(),
        u64::MAX,
        "slow log must be disabled for the overhead baseline"
    );
    let iters = 300u32;
    let mut session = db.session();
    session.run("range of f is faculty").expect("range");
    let (mut plain_ns, mut monitored_ns) = (u64::MAX, u64::MAX);
    for _ in 0..9 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(session.execute(&stmt).expect("execute"));
        }
        plain_ns = plain_ns.min(start.elapsed().as_nanos() as u64);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(session.execute_monitored(&stmt).expect("execute"));
        }
        monitored_ns = monitored_ns.min(start.elapsed().as_nanos() as u64);
    }
    assert!(
        session.database().recorder().slowlog().is_empty(),
        "disabled slow log captured statements"
    );
    let ratio = monitored_ns as f64 / plain_ns.max(1) as f64;
    assert!(
        ratio < 1.05,
        "disabled slow log overhead {ratio:.3} exceeds the 5% budget"
    );
    println!("slow-log overhead: disabled-threshold ratio {ratio:.3} — within budget (<1.05)");
    T10Stats {
        scrapes: lat.len(),
        scrape_p50_ns: p50,
        scrape_p99_ns: p99,
        statements: iters,
        slowlog_disabled_overhead_ratio: ratio,
    }
}

// ---------------------------------------------------------------------
// T11 — temporal introspection: the sampler's cost and the telemetry's
// queryability
// ---------------------------------------------------------------------

/// The T11 measurements (serialized to BENCH_observability.json).
struct T11Stats {
    iters: u32,
    sampler_overhead_ratio: f64,
    samples_taken: u64,
    telemetry_query_ns: u64,
}

fn t11_temporal_introspection() -> T11Stats {
    heading("T11: temporal introspection — sampler overhead on the timeslice workload");
    let clock = Arc::new(ManualClock::new(Chronon::new(900)));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    for i in 0..200 {
        clock.tick(1);
        db.session()
            .run(&format!(
                r#"append to faculty (name = "prof{i:05}", rank = "assistant")
                   valid from "{}" to forever"#,
                chronos_core::calendar::Date::from_chronon(Chronon::new(900 + i))
            ))
            .expect("append");
    }
    // The T4 shape through TQuel: a historical timeslice.
    let day = chronos_core::calendar::Date::from_chronon(Chronon::new(1000));
    let stmt = chronos_tquel::parser::parse_statement(&format!(
        r#"retrieve (f.rank) where f.name = "prof00007" when f overlap "{day}""#
    ))
    .expect("parse");

    // Sampler off vs on, interleaved min-of-9 (same discipline as
    // overhead_check): the background thread snapshots engine_stats()
    // every 5ms while the foreground runs the timeslice loop.
    let iters = 300u32;
    let run_loop = |db: &mut Database| -> u64 {
        let mut session = db.session();
        session.run("range of f is faculty").expect("range");
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(session.execute(&stmt).expect("execute"));
        }
        start.elapsed().as_nanos() as u64
    };
    std::hint::black_box(run_loop(&mut db)); // warmup
                                             // Paired rounds: each measures off and on adjacently (alternating
                                             // which goes first, so frequency drift hits both sides alike) and
                                             // contributes one ratio; the median ratio is immune to the odd
                                             // preempted loop that a min-of-totals would let dominate.
    let mut ratios = Vec::new();
    for round in 0..15 {
        let off_first = round % 2 == 0;
        let mut off_ns = 0u64;
        if off_first {
            off_ns = run_loop(&mut db);
        }
        db.start_stats_sampler(std::time::Duration::from_millis(5))
            .expect("sampler");
        let on_ns = run_loop(&mut db);
        db.stop_stats_sampler();
        if !off_first {
            off_ns = run_loop(&mut db);
        }
        ratios.push(on_ns as f64 / off_ns.max(1) as f64);
    }
    let samples_taken = db.telemetry().stats().samples_taken;
    assert!(samples_taken > 0, "the sampler never sampled under load");
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];
    assert!(
        ratio < 1.05,
        "sampler-enabled overhead {ratio:.3} exceeds the 5% budget"
    );
    println!("sampler overhead: enabled-vs-off ratio {ratio:.3} — within budget (<1.05)");

    // Querying the telemetry is an ordinary TQuel retrieve over
    // sys$stats; measure its end-to-end latency.
    db.sample_now();
    let mut session = db.session();
    session.run("range of s is sys$stats").expect("range");
    let tstmt =
        chronos_tquel::parser::parse_statement(r#"retrieve (s.value) where s.metric = "commits""#)
            .expect("parse");
    let telemetry_query_ns = time_ns(50, || {
        std::hint::black_box(session.execute(&tstmt).expect("telemetry query"));
    });
    drop(session);
    println!(
        "{:>8} | {:>13} | {:>8} | {:>18}",
        "iters", "overhead", "samples", "sys$stats query µs"
    );
    println!(
        "{:>8} | {:>12.3}x | {:>8} | {:>18.1}",
        iters,
        ratio,
        samples_taken,
        telemetry_query_ns as f64 / 1e3
    );
    T11Stats {
        iters,
        sampler_overhead_ratio: ratio,
        samples_taken,
        telemetry_query_ns,
    }
}

/// Emits the T9 sweep plus the T10/T11/T13 stats as
/// `BENCH_observability.json`.  Hand-rolled JSON: the workspace
/// deliberately has no serde.
fn write_bench_observability_json(
    rows: &[ObsRow],
    t10: Option<&T10Stats>,
    t11: Option<&T11Stats>,
    t13: Option<&T13Stats>,
    t14: Option<&T14Stats>,
) {
    let mut out = String::from("{\n  \"experiment\": \"T9+T10+T11+T13+T14\",\n");
    out.push_str("  \"description\": \"replayed transactions per checkpoint interval; operational surface; temporal introspection; concurrency-aware observability; workload analytics\",\n");
    out.push_str("  \"source\": \"engine metrics registry + embedded HTTP exporter\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"transactions\": {}, \"interval\": {}, \"txns_replayed\": {}, \
             \"checkpoint_hits\": {}, \"rollback_ns\": {}}}{}\n",
            r.transactions,
            r.interval,
            r.txns_replayed,
            r.checkpoint_hits,
            r.rollback_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if let Some(t) = t10 {
        out.push_str(&format!(
            ",\n  \"t10\": {{\"scrapes\": {}, \"scrape_p50_ns\": {}, \"scrape_p99_ns\": {}, \
             \"statements\": {}, \"slowlog_disabled_overhead_ratio\": {:.4}}}",
            t.scrapes,
            t.scrape_p50_ns,
            t.scrape_p99_ns,
            t.statements,
            t.slowlog_disabled_overhead_ratio
        ));
    }
    if let Some(t) = t11 {
        out.push_str(&format!(
            ",\n  \"t11\": {{\"iters\": {}, \"sampler_overhead_ratio\": {:.4}, \
             \"samples_taken\": {}, \"telemetry_query_ns\": {}}}",
            t.iters, t.sampler_overhead_ratio, t.samples_taken, t.telemetry_query_ns
        ));
    }
    if let Some(t) = t13 {
        out.push_str(&format!(
            ",\n  \"t13\": {{\"writers\": {}, \"rounds\": {}, \"enabled_ms_median\": {:.1}, \
             \"disabled_ms_median\": {:.1}, \"overhead_ratio\": {:.4}, \"queue_hwm\": {}, \
             \"queue_depth_peak_sampled\": {}, \"queue_depth_samples\": {}, \"stages\": [",
            t.writers,
            t.rounds,
            t.enabled_ms,
            t.disabled_ms,
            t.overhead_ratio,
            t.queue_hwm,
            t.queue_depth_peak_sampled,
            t.queue_depth_samples,
        ));
        for (i, s) in t.stages.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"stage\": \"{}\", \"samples\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                if i > 0 { ", " } else { "" },
                s.name,
                s.samples,
                s.p50_ns,
                s.p99_ns
            ));
        }
        out.push_str("]}");
    }
    if let Some(t) = t14 {
        out.push_str(&format!(
            ",\n  \"t14\": {{\"rounds\": {}, \"queries_per_round\": {}, \"versions\": {}, \
             \"enabled_ms_median\": {:.1}, \"disabled_ms_median\": {:.1}, \
             \"overhead_ratio\": {:.4}, \"fingerprints\": {}, \"retrieve_calls\": {}, \
             \"tablestats\": {}}}",
            t.rounds,
            t.queries_per_round,
            t.versions,
            t.enabled_ms,
            t.disabled_ms,
            t.overhead_ratio,
            t.fingerprints,
            t.retrieve_calls,
            t.tablestats,
        ));
    }
    out.push_str("\n}\n");
    match std::fs::write("BENCH_observability.json", &out) {
        Ok(()) => println!("(wrote BENCH_observability.json)"),
        Err(e) => println!("(could not write BENCH_observability.json: {e})"),
    }
}

/// Asserts the disabled recorder costs nothing measurable: a loop of
/// real work with a counter call per iteration must stay within 5% of
/// the same loop without it.  Samples are interleaved (base,
/// instrumented, base, …) and the minimum of each side is compared, so
/// scheduler noise and frequency drift hit both variants alike.
fn overhead_check() {
    let data: Vec<u64> = (0..1024).collect();
    let work = |instrumented: bool, disabled: &Recorder| -> u64 {
        // Opaque flag: otherwise the compiler specializes the loop per
        // call site (constant true/false) and the two copies land at
        // different alignments, which alone can skew a tight loop by
        // >5% — the very budget this check enforces.
        let instrumented = std::hint::black_box(instrumented);
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..20_000 {
            acc = acc.wrapping_add(std::hint::black_box(&data).iter().sum::<u64>());
            if instrumented {
                disabled.count(|m| &m.heap_rows_scanned);
            }
        }
        std::hint::black_box(acc);
        start.elapsed().as_nanos() as u64
    };
    let disabled = Recorder::disabled();
    let (mut base_ns, mut instrumented_ns) = (u64::MAX, u64::MAX);
    for _ in 0..9 {
        base_ns = base_ns.min(work(false, &disabled));
        instrumented_ns = instrumented_ns.min(work(true, &disabled));
    }
    assert!(
        disabled.snapshot().is_zero(),
        "disabled recorder accumulated counts"
    );
    let ratio = instrumented_ns as f64 / base_ns.max(1) as f64;
    assert!(
        ratio < 1.05,
        "disabled recorder overhead {ratio:.3} exceeds the 5% budget"
    );
    println!("observability overhead: disabled-recorder ratio {ratio:.3} — within budget (<1.05)");
}

// ---------------------------------------------------------------------
// T12 — concurrent MVCC query service (EXPERIMENTS_ONLY=T12)
// ---------------------------------------------------------------------

/// Per-statement think time of the closed-loop readers.  A closed loop
/// models interactive sessions: each client waits `think`, issues one
/// statement, and blocks for the answer, so single-session throughput
/// is bounded by `1 / (think + round trip)` and adding sessions raises
/// aggregate throughput until the core saturates.
const T12_THINK_US: u64 = 400;

/// One row of the closed-loop read sweep (serialized to
/// BENCH_concurrency.json).
struct T12ReadRow {
    sessions: usize,
    statements: u64,
    elapsed_ms: f64,
    per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// One row of the group-commit write rounds.
struct T12WriteRow {
    writers: usize,
    commits: u64,
    fsyncs: u64,
    fsyncs_per_commit: f64,
    batches: u64,
    fsyncs_saved: u64,
    avg_batch: f64,
    elapsed_ms: f64,
}

fn t12_percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

fn t12_read_round(addr: &str, sessions: usize) -> T12ReadRow {
    let barrier = Arc::new(std::sync::Barrier::new(sessions + 1));
    let mut handles = Vec::new();
    for _ in 0..sessions {
        let addr = addr.to_string();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = chronos_db::QueryClient::connect(&addr).expect("connect");
            let q = "range of f is faculty retrieve (f.name, f.rank)";
            // Warm the connection and pin the session's snapshot.
            assert!(client.execute(q).expect("warmup").ok);
            barrier.wait();
            let deadline = Instant::now() + std::time::Duration::from_millis(600);
            let mut lats_us = Vec::new();
            while Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_micros(T12_THINK_US));
                let t0 = Instant::now();
                let resp = client.execute_pinned(q).expect("read");
                assert!(resp.ok, "{}", resp.body);
                lats_us.push(t0.elapsed().as_nanos() as u64 / 1_000);
            }
            lats_us
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    let mut all: Vec<u64> = Vec::new();
    for h in handles {
        all.extend(h.join().expect("reader thread"));
    }
    let elapsed = t0.elapsed();
    all.sort_unstable();
    T12ReadRow {
        sessions,
        statements: all.len() as u64,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        per_sec: all.len() as f64 / elapsed.as_secs_f64(),
        p50_us: t12_percentile_us(&all, 50.0),
        p99_us: t12_percentile_us(&all, 99.0),
    }
}

fn t12_write_round(engine: &Arc<chronos_db::Engine>, writers: usize) -> T12WriteRow {
    const COMMITS_EACH: usize = 50;
    let before = engine.stats();
    let barrier = Arc::new(std::sync::Barrier::new(writers + 1));
    let mut handles = Vec::new();
    for w in 0..writers {
        let engine = Arc::clone(engine);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut session = engine.session();
            barrier.wait();
            for j in 0..COMMITS_EACH {
                session
                    .run(&format!(
                        r#"append to faculty (name = "w{w}n{writers}b{j:03}", rank = "associate")"#
                    ))
                    .expect("writer append");
            }
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("writer thread");
    }
    let elapsed = t0.elapsed();
    let after = engine.stats();
    let commits = after.metrics.commits - before.metrics.commits;
    let fsyncs = after.metrics.wal_fsyncs - before.metrics.wal_fsyncs;
    let batches = after.metrics.group_commit_batches - before.metrics.group_commit_batches;
    T12WriteRow {
        writers,
        commits,
        fsyncs,
        fsyncs_per_commit: fsyncs as f64 / commits.max(1) as f64,
        batches,
        fsyncs_saved: after.metrics.group_fsyncs_saved - before.metrics.group_fsyncs_saved,
        avg_batch: commits as f64 / batches.max(1) as f64,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
    }
}

fn t12_concurrent_service() {
    heading("T12: concurrent MVCC query service — snapshot readers + group commit");
    // A durable directory under target/ so the group fsyncs hit a real
    // file rather than an in-memory log.
    let dir = std::path::PathBuf::from("target/t12-service-db");
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(Chronon::new(0)));
    let db = Database::open(&dir, clock.clone() as _).expect("open t12 db");
    let engine = chronos_db::Engine::start(db);
    {
        let mut s = engine.session();
        s.run("create faculty (name = str, rank = str) as temporal")
            .expect("create");
        for i in 0..50 {
            clock.tick(1);
            s.run(&format!(
                r#"append to faculty (name = "prof{i:03}", rank = "assistant")"#
            ))
            .expect("seed append");
        }
    }
    let server = chronos_db::QueryServer::serve(Arc::clone(&engine), "127.0.0.1:0").expect("serve");
    let addr = server.addr().to_string();

    println!("closed-loop readers over loopback (think {T12_THINK_US} µs per statement):");
    println!(
        "{:>8} | {:>10} | {:>10} | {:>8} | {:>8}",
        "sessions", "stmts", "stmts/sec", "p50 µs", "p99 µs"
    );
    let mut reads = Vec::new();
    for &n in &[1usize, 2, 4, 8] {
        let row = t12_read_round(&addr, n);
        println!(
            "{:>8} | {:>10} | {:>10.0} | {:>8.0} | {:>8.0}",
            row.sessions, row.statements, row.per_sec, row.p50_us, row.p99_us
        );
        reads.push(row);
    }
    let scaling = reads.last().map(|r| r.per_sec).unwrap_or(0.0)
        / reads.first().map(|r| r.per_sec.max(1.0)).unwrap_or(1.0);
    println!("read scaling 1 → 8 sessions: {scaling:.2}x");

    println!("\ngroup commit (no-think writer sessions, 50 commits each):");
    println!(
        "{:>8} | {:>8} | {:>7} | {:>14} | {:>8} | {:>10} | {:>10}",
        "writers", "commits", "fsyncs", "fsyncs/commit", "batches", "avg batch", "saved"
    );
    let mut writes = Vec::new();
    for &n in &[1usize, 8] {
        let row = t12_write_round(&engine, n);
        println!(
            "{:>8} | {:>8} | {:>7} | {:>14.3} | {:>8} | {:>10.2} | {:>10}",
            row.writers,
            row.commits,
            row.fsyncs,
            row.fsyncs_per_commit,
            row.batches,
            row.avg_batch,
            row.fsyncs_saved
        );
        writes.push(row);
    }
    let batch_hist = &engine.stats().metrics.group_batch_size;
    let (batch_p50, batch_p99) = (
        batch_hist.percentile(50.0).unwrap_or(0),
        batch_hist.percentile(99.0).unwrap_or(0),
    );

    server.shutdown();
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    write_bench_concurrency_json(&reads, scaling, &writes, batch_p50, batch_p99);
}

// ---------------------------------------------------------------------
// T13 — concurrency-aware observability: the tracing + telemetry stack
// priced under the 8-writer group-commit workload (EXPERIMENTS_ONLY=T13)
// ---------------------------------------------------------------------

/// One per-stage row of the commit latency decomposition.
struct T13StageRow {
    name: &'static str,
    samples: u64,
    p50_ns: u64,
    p99_ns: u64,
}

/// The T13 measurements (serialized to BENCH_observability.json).
struct T13Stats {
    writers: usize,
    rounds: usize,
    /// Median per-round wall time with the full observability stack on.
    enabled_ms: f64,
    /// The same workload against the disabled-recorder twin.
    disabled_ms: f64,
    /// enabled / disabled — the price of observing the engine.
    overhead_ratio: f64,
    queue_hwm: u64,
    queue_depth_peak_sampled: u64,
    queue_depth_samples: usize,
    stages: Vec<T13StageRow>,
}

/// One group-commit write round: `writers` no-think sessions, 50
/// commits each.  With `traced`, every statement carries a
/// client-chosen trace id (the `--connect --trace-id` path).
fn t13_write_round(
    engine: &Arc<chronos_db::Engine>,
    writers: usize,
    traced: bool,
    round: usize,
) -> f64 {
    const COMMITS_EACH: usize = 50;
    let barrier = Arc::new(std::sync::Barrier::new(writers + 1));
    let mut handles = Vec::new();
    for w in 0..writers {
        let engine = Arc::clone(engine);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut session = engine.session();
            barrier.wait();
            for j in 0..COMMITS_EACH {
                if traced {
                    session.set_trace_id(format!("t13-r{round}-w{w}-s{j:03}"));
                }
                session
                    .run(&format!(
                        r#"append to faculty (name = "r{round}w{w}b{j:03}", rank = "associate")"#
                    ))
                    .expect("writer append");
            }
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("writer thread");
    }
    t0.elapsed().as_secs_f64() * 1e3
}

fn t13_observability_overhead() -> T13Stats {
    heading(
        "T13: concurrency-aware observability — tracing + telemetry under 8-writer group commit",
    );
    const WRITERS: usize = 8;
    const ROUNDS: usize = 5;

    // Two durable twins under target/: one with the default (enabled)
    // recorder, client-chosen trace ids, and the background stats
    // sampler — the full observability stack — and one whose recorder
    // short-circuits every instrument.  Both pay the same real fsyncs.
    let dir_on = std::path::PathBuf::from("target/t13-obs-on-db");
    let dir_off = std::path::PathBuf::from("target/t13-obs-off-db");
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
    let clock_on = Arc::new(ManualClock::new(Chronon::new(0)));
    let mut db_on = Database::open(&dir_on, clock_on as _).expect("open t13 enabled db");
    db_on
        .start_stats_sampler(std::time::Duration::from_millis(25))
        .expect("sampler");
    let engine_on = chronos_db::Engine::start(db_on);
    let clock_off = Arc::new(ManualClock::new(Chronon::new(0)));
    let obs_off = chronos_db::ObsBootstrap::disabled();
    let db_off =
        Database::open_with_obs(&dir_off, clock_off as _, &obs_off).expect("open t13 disabled db");
    let engine_off = chronos_db::Engine::start(db_off);
    for engine in [&engine_on, &engine_off] {
        engine
            .session()
            .run("create faculty (name = str, rank = str) as temporal")
            .expect("create");
    }

    // Poll the writer-queue depth gauge on the observed twin while its
    // rounds run: the trajectory the dashboards would graph.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let poller = {
        let (engine, stop) = (Arc::clone(&engine_on), Arc::clone(&stop));
        std::thread::spawn(move || -> Vec<u64> {
            let mut depths = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                depths.push(engine.stats().metrics.commit_queue_depth);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            depths
        })
    };

    // One uncounted warmup pair, then paired rounds; the ratio of
    // medians absorbs fsync jitter better than per-pair ratios.
    t13_write_round(&engine_on, WRITERS, true, 99);
    t13_write_round(&engine_off, WRITERS, false, 99);
    let (mut on_ms, mut off_ms) = (Vec::new(), Vec::new());
    for r in 0..ROUNDS {
        on_ms.push(t13_write_round(&engine_on, WRITERS, true, r));
        off_ms.push(t13_write_round(&engine_off, WRITERS, false, r));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let depths = poller.join().expect("queue-depth poller");

    // A few reads so the read-side contention timer has samples too.
    {
        let mut s = engine_on.session();
        for _ in 0..10 {
            s.refresh();
            s.query("range of f is faculty retrieve (f.name)")
                .expect("read round");
        }
    }

    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let enabled_ms = median(&mut on_ms);
    let disabled_ms = median(&mut off_ms);
    let ratio = enabled_ms / disabled_ms.max(1e-9);

    let stats = engine_on.stats();
    let m = &stats.metrics;
    assert!(
        m.commit_queue_hwm > 0,
        "8 writers never made the commit queue nonempty"
    );
    let stages: Vec<T13StageRow> = [
        ("commit_queue_wait", &m.commit_queue_wait),
        ("commit_lock_wait", &m.commit_lock_wait),
        ("commit_apply", &m.commit_apply),
        ("commit_fsync", &m.commit_fsync),
        ("commit_ack", &m.commit_ack),
        ("read_lock_wait", &m.read_lock_wait),
    ]
    .into_iter()
    .map(|(name, h)| T13StageRow {
        name,
        samples: h.samples,
        p50_ns: h.percentile(50.0).unwrap_or(0),
        p99_ns: h.percentile(99.0).unwrap_or(0),
    })
    .collect();
    for s in &stages {
        // The read-side timer only fires on retrieves (checked above);
        // every commit-side stage must have fired during the rounds.
        assert!(
            s.samples > 0,
            "stage {} recorded no samples under the write rounds",
            s.name
        );
    }
    assert!(
        engine_off.stats().metrics.is_zero(),
        "the disabled twin recorded metrics"
    );

    println!(
        "{:>8} | {:>12} | {:>13} | {:>8}",
        "writers", "enabled ms", "disabled ms", "ratio"
    );
    println!("{WRITERS:>8} | {enabled_ms:>12.1} | {disabled_ms:>13.1} | {ratio:>8.3}");
    assert!(
        ratio < 1.05,
        "observability overhead {ratio:.3} exceeds the 5% budget"
    );
    println!("tracing + telemetry overhead ratio {ratio:.3} — within budget (<1.05)");
    let peak_sampled = depths.iter().copied().max().unwrap_or(0);
    println!(
        "writer queue: high-watermark {} (gauge), peak {} over {} sampled depths",
        m.commit_queue_hwm,
        peak_sampled,
        depths.len()
    );
    println!("commit latency decomposition (enabled twin):");
    for s in &stages {
        println!(
            "  {:>18}: {:>8} sample(s)  p50 {:>9} ns  p99 {:>9} ns",
            s.name, s.samples, s.p50_ns, s.p99_ns
        );
    }

    let queue_depth_samples = depths.len();
    let t13 = T13Stats {
        writers: WRITERS,
        rounds: ROUNDS,
        enabled_ms,
        disabled_ms,
        overhead_ratio: ratio,
        queue_hwm: m.commit_queue_hwm,
        queue_depth_peak_sampled: peak_sampled,
        queue_depth_samples,
        stages,
    };
    engine_on.shutdown();
    engine_off.shutdown();
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
    t13
}

// ---------------------------------------------------------------------
// T14 — workload analytics: query fingerprinting + analyze statistics
// priced against a disabled-recorder twin (EXPERIMENTS_ONLY=T14)
// ---------------------------------------------------------------------

/// The T14 measurements (serialized to BENCH_observability.json).
struct T14Stats {
    rounds: usize,
    queries_per_round: usize,
    /// Stored versions of the analyzed relation (chains of 3 per key).
    versions: i64,
    /// Best per-round wall time with fingerprinting + analyze on.
    enabled_ms: f64,
    /// The same workload against the disabled-recorder twin.
    disabled_ms: f64,
    /// enabled / disabled — the price of workload analytics.
    overhead_ratio: f64,
    /// Entries in the fingerprint store after all rounds.
    fingerprints: usize,
    /// Calls folded into the single retrieve-shaped fingerprint.
    retrieve_calls: u64,
    /// Statistics in the relation's latest `sys$tablestats` sample.
    tablestats: usize,
}

/// One analytics round: `queries` same-shape retrieves with rotating
/// literals, then one `analyze` pass over the relation.
fn t14_round(db: &mut Database, queries: usize, round: usize) -> f64 {
    let t0 = Instant::now();
    let mut s = db.session();
    for q in 0..queries {
        let name = (round * queries + q) % 2000;
        s.query(&format!(
            r#"range of p is people retrieve (p.rank) where p.name = "p{name}""#
        ))
        .expect("t14 retrieve");
    }
    s.run("analyze people").expect("t14 analyze");
    t0.elapsed().as_secs_f64() * 1e3
}

fn t14_workload_analytics() -> T14Stats {
    heading("T14: workload analytics — query fingerprinting + analyze vs a disabled-recorder twin");
    const ROUNDS: usize = 5;
    const QUERIES: usize = 200;
    const KEYS: usize = 2000;

    // Durable twins under target/, populated identically: 2000 facts,
    // then a sweeping replace — 6000 stored versions in chains of 3.
    // The measured rounds are read-dominant (retrieves + analyze), so
    // the twins differ only in the recorder the statements report into.
    let dir_on = std::path::PathBuf::from("target/t14-analytics-on-db");
    let dir_off = std::path::PathBuf::from("target/t14-analytics-off-db");
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
    let clock_on = Arc::new(ManualClock::new(Chronon::new(0)));
    let mut db_on = Database::open(&dir_on, clock_on.clone() as _).expect("open t14 enabled db");
    let clock_off = Arc::new(ManualClock::new(Chronon::new(0)));
    let obs_off = chronos_db::ObsBootstrap::disabled();
    let mut db_off = Database::open_with_obs(&dir_off, clock_off.clone() as _, &obs_off)
        .expect("open t14 disabled db");
    for (db, clock) in [(&mut db_on, &clock_on), (&mut db_off, &clock_off)] {
        let mut s = db.session();
        s.run("create people (name = str, rank = str) as temporal")
            .expect("create");
        let mut program = String::new();
        for i in 0..KEYS {
            program.push_str(&format!(
                "append to people (name = \"p{i}\", rank = \"junior\")\n"
            ));
        }
        s.run(&program).expect("seed appends");
        drop(s);
        clock.advance_to(Chronon::new(1000));
        db.session()
            .run(r#"range of p is people replace p (rank = "senior") where p.rank = "junior""#)
            .expect("seed replace");
    }

    // One uncounted warmup pair, then interleaved paired rounds.  The
    // rounds are read-only, so noise is one-sided (scheduler stalls
    // only ever slow a round down): comparing each side's *minimum*
    // estimates the true cost, as overhead_check does for tight loops.
    t14_round(&mut db_on, QUERIES, 99);
    t14_round(&mut db_off, QUERIES, 99);
    let (mut on_ms, mut off_ms) = (Vec::new(), Vec::new());
    for r in 0..ROUNDS {
        on_ms.push(t14_round(&mut db_on, QUERIES, r));
        off_ms.push(t14_round(&mut db_off, QUERIES, r));
    }

    let best = |v: &[f64]| -> f64 { v.iter().copied().fold(f64::INFINITY, f64::min) };
    let enabled_ms = best(&on_ms);
    let disabled_ms = best(&off_ms);
    let ratio = enabled_ms / disabled_ms.max(1e-9);

    // Dedup: (ROUNDS+1) * QUERIES literal variations of one statement
    // shape must have folded into a single retrieve-kind fingerprint.
    let entries = db_on.recorder().fingerprints().entries();
    let retrieves: Vec<_> = entries.iter().filter(|e| e.kind == "retrieve").collect();
    assert_eq!(
        retrieves.len(),
        1,
        "literal variations split the fingerprint: {retrieves:#?}"
    );
    let retrieve_calls = retrieves[0].calls;
    assert_eq!(retrieve_calls as usize, (ROUNDS + 1) * QUERIES);
    assert!(
        retrieves[0].statement.contains("\"?\""),
        "literals survived normalization: {}",
        retrieves[0].statement
    );

    // The analyze passes populated sys$tablestats, and the repeated
    // samples agree (the relation did not change between rounds).
    let stats_rel = db_on
        .session()
        .query(r#"range of ts is sys$tablestats retrieve (ts.stat, ts.value) where ts.relation = "people""#)
        .expect("tablestats query");
    let versions = stats_rel
        .rows
        .iter()
        .find(|r| r.tuple.get(0).to_string() == "versions")
        .map(|r| r.tuple.get(1).to_string().parse::<i64>().expect("int"))
        .expect("versions stat");
    assert_eq!(
        versions,
        3 * KEYS as i64,
        "analyze saw a different relation"
    );
    assert!(
        db_off.recorder().fingerprints().entries().is_empty(),
        "the disabled twin recorded fingerprints"
    );

    println!(
        "{:>8} | {:>12} | {:>13} | {:>8}",
        "rounds", "enabled ms", "disabled ms", "ratio"
    );
    println!("{ROUNDS:>8} | {enabled_ms:>12.1} | {disabled_ms:>13.1} | {ratio:>8.3}");
    assert!(
        ratio < 1.05,
        "workload-analytics overhead {ratio:.3} exceeds the 5% budget"
    );
    println!("fingerprinting + analyze overhead ratio {ratio:.3} — within budget (<1.05)");
    println!(
        "fingerprints: {} entries; retrieve shape folded {} calls; latest sample: {} statistics",
        entries.len(),
        retrieve_calls,
        stats_rel.len()
    );

    let t14 = T14Stats {
        rounds: ROUNDS,
        queries_per_round: QUERIES,
        versions,
        enabled_ms,
        disabled_ms,
        overhead_ratio: ratio,
        fingerprints: entries.len(),
        retrieve_calls,
        tablestats: stats_rel.len(),
    };
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
    t14
}

/// Emits the T12 sweep as `BENCH_concurrency.json` (hand-rolled JSON,
/// same discipline as the other BENCH_* writers).
fn write_bench_concurrency_json(
    reads: &[T12ReadRow],
    scaling: f64,
    writes: &[T12WriteRow],
    batch_p50: u64,
    batch_p99: u64,
) {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"T12 concurrent MVCC query service\",\n");
    out.push_str("  \"model\": \"closed-loop\",\n");
    out.push_str(&format!("  \"think_us\": {T12_THINK_US},\n"));
    out.push_str("  \"reads\": [\n");
    for (i, r) in reads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"statements\": {}, \"elapsed_ms\": {:.1}, \"stmts_per_sec\": {:.1}, \"p50_us\": {:.0}, \"p99_us\": {:.0}}}{}\n",
            r.sessions,
            r.statements,
            r.elapsed_ms,
            r.per_sec,
            r.p50_us,
            r.p99_us,
            if i + 1 < reads.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"read_scaling_1_to_8\": {scaling:.3},\n"));
    out.push_str("  \"writes\": [\n");
    for (i, w) in writes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"writers\": {}, \"commits\": {}, \"fsyncs\": {}, \"fsyncs_per_commit\": {:.3}, \"batches\": {}, \"avg_batch\": {:.2}, \"fsyncs_saved\": {}, \"elapsed_ms\": {:.1}}}{}\n",
            w.writers,
            w.commits,
            w.fsyncs,
            w.fsyncs_per_commit,
            w.batches,
            w.avg_batch,
            w.fsyncs_saved,
            w.elapsed_ms,
            if i + 1 < writes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"group_batch_size_p50\": {batch_p50},\n"));
    out.push_str(&format!("  \"group_batch_size_p99\": {batch_p99}\n"));
    out.push_str("}\n");
    match std::fs::write("BENCH_concurrency.json", &out) {
        Ok(()) => println!("(wrote BENCH_concurrency.json)"),
        Err(e) => println!("(could not write BENCH_concurrency.json: {e})"),
    }
}

// ---------------------------------------------------------------------
// T17 — physical storage: version-chain length vs duplication factor
// (EXPERIMENTS_ONLY=T17)
// ---------------------------------------------------------------------

/// One sweep point of the T17 chain-length experiment (serialized to
/// BENCH_storage.json).
struct T17Row {
    chain_len: usize,
    keys: usize,
    versions: u64,
    pages: u32,
    bytes_on_disk: u64,
    occupancy_x1000: u64,
    bytes_per_version: u64,
    dup_factor_x1000: u64,
}

/// Grows per-key version chains by replacement rounds and reads the
/// paged heap's measured shape back through `physical_stats` — the same
/// numbers `sys$pages`, the exporter's `/storage` document, and
/// `analyze` report.  The paper's duplication argument (§5) is about
/// exactly this: every version of a key re-stores the bytes the
/// versions share.
fn t17_physical_storage() -> Vec<T17Row> {
    heading("T17: physical storage — version-chain length vs duplication factor");
    println!(
        "{:>6} | {:>6} | {:>9} | {:>6} | {:>9} | {:>9} | {:>7} | {:>8}",
        "chain", "keys", "versions", "pages", "disk KB", "occup ‰", "B/vers", "dup ‰"
    );
    const KEYS: usize = 128;
    let mut rows = Vec::new();
    for &chain in &[1usize, 2, 4, 8, 16, 32] {
        let mut table = StoredBitemporalTable::in_memory(
            chronos_core::schema::faculty_schema(),
            TemporalSignature::Interval,
        );
        let mut day = 1_000i64;
        for round in 0..chain {
            let mut ops = Vec::with_capacity(KEYS * 2);
            for k in 0..KEYS {
                let name = format!("prof{k:05}");
                if round > 0 {
                    let prev = format!("rank{:03}", round - 1);
                    ops.push(HistoricalOp::remove(RowSelector::tuple(tuple([
                        name.as_str(),
                        prev.as_str(),
                    ]))));
                }
                let rank = format!("rank{round:03}");
                ops.push(HistoricalOp::insert(
                    tuple([name.as_str(), rank.as_str()]),
                    Validity::Interval(Period::from_start(Chronon::new(day))),
                ));
            }
            table.try_commit(Chronon::new(day), &ops).expect("valid");
            day += 10;
        }
        let p = table.physical_stats().expect("stats");
        assert_eq!(
            p.versions,
            (KEYS * chain) as u64,
            "every replacement round adds one stored version per key"
        );
        println!(
            "{:>6} | {:>6} | {:>9} | {:>6} | {:>9.1} | {:>9} | {:>7} | {:>8}",
            chain,
            KEYS,
            p.versions,
            p.pages,
            p.bytes_on_disk as f64 / 1e3,
            p.occupancy_x1000,
            p.bytes_per_version,
            p.dup_factor_x1000,
        );
        rows.push(T17Row {
            chain_len: chain,
            keys: KEYS,
            versions: p.versions,
            pages: p.pages,
            bytes_on_disk: p.bytes_on_disk,
            occupancy_x1000: p.occupancy_x1000,
            bytes_per_version: p.bytes_per_version,
            dup_factor_x1000: p.dup_factor_x1000,
        });
    }
    println!("(each round closes a key's current version and opens a new one; the");
    println!(" versions of one key re-store the bytes they share, so the measured");
    println!(" duplication factor grows with chain length while bytes/version is flat)");
    rows
}

// ---------------------------------------------------------------------
// T16 — frozen segments: bytes/version + as-of point-query latency,
// heap vs segments (EXPERIMENTS_ONLY=T16)
// ---------------------------------------------------------------------

/// One sweep point of the T16 heap-vs-segment comparison.
struct T16Row {
    chain_len: usize,
    keys: usize,
    frozen_versions: u64,
    heap_bytes_per_version: u64,
    heap_dup_x1000: u64,
    seg_bytes_per_version: u64,
    seg_dup_x1000: u64,
    seg_file_bytes: u64,
    heap_lookup_ns: u64,
    seg_lookup_ns: u64,
    speedup_x1000: u64,
}

/// Grows per-key version chains by replacement rounds (the T17
/// driver); returns the commit days, for picking as-of probe times.
fn t16_drive(table: &mut StoredBitemporalTable, keys: usize, chain: usize) -> Vec<i64> {
    let mut days = Vec::with_capacity(chain);
    let mut day = 1_000i64;
    for round in 0..chain {
        let mut ops = Vec::with_capacity(keys * 2);
        for k in 0..keys {
            let name = format!("prof{k:05}");
            if round > 0 {
                let prev = format!("rank{:03}", round - 1);
                ops.push(HistoricalOp::remove(RowSelector::tuple(tuple([
                    name.as_str(),
                    prev.as_str(),
                ]))));
            }
            let rank = format!("rank{round:03}");
            ops.push(HistoricalOp::insert(
                tuple([name.as_str(), rank.as_str()]),
                Validity::Interval(Period::from_start(Chronon::new(day))),
            ));
        }
        table.try_commit(Chronon::new(day), &ops).expect("valid");
        days.push(day);
        day += 10;
    }
    days
}

/// Freezes one of two identically-driven tables and measures both
/// physical shape (bytes/version, duplication) and as-of point-lookup
/// latency, heap vs segment.  The tentpole's acceptance bar — ≤1.3×
/// duplication and ≥2× lookup speedup at chain length 32 — is
/// asserted here, so a codec or skip-path regression fails the run.
fn t16_frozen_segments() -> Vec<T16Row> {
    heading("T16: frozen segments — bytes/version + as-of point lookup, heap vs segments");
    println!(
        "{:>6} | {:>8} | {:>8} | {:>7} | {:>7} | {:>9} | {:>9} | {:>8}",
        "chain", "B/v heap", "B/v seg", "dup hp", "dup seg", "heap ns", "seg ns", "speedup"
    );
    const KEYS: usize = 128;
    let mut rows = Vec::new();
    for &chain in &[4usize, 8, 16, 32] {
        let schema = chronos_core::schema::faculty_schema();
        let mut heap_only =
            StoredBitemporalTable::in_memory(schema.clone(), TemporalSignature::Interval);
        let mut frozen = StoredBitemporalTable::in_memory(schema, TemporalSignature::Interval);
        let days = t16_drive(&mut heap_only, KEYS, chain);
        t16_drive(&mut frozen, KEYS, chain);

        let seg_path =
            std::env::temp_dir().join(format!("chronos-t16-{}-{chain}.seg", std::process::id()));
        let _ = std::fs::remove_file(&seg_path);
        let report = frozen
            .freeze_into(&seg_path)
            .expect("freeze")
            .expect("chains past round one always leave closed versions");
        assert_eq!(report.versions, (KEYS * (chain - 1)) as u64);
        let heap_stats = heap_only.physical_stats().expect("stats");
        let seg_stats = frozen.segments()[0].stats();

        // As-of point probes in the middle of history: every key is
        // alive, so the heap must stab + decode + filter a full
        // timeslice while the segment walks one delta chain.
        let probes: Vec<(Value, Chronon)> = (0..64)
            .map(|i| {
                (
                    Value::str(format!("prof{:05}", (i * 7) % KEYS)),
                    Chronon::new(days[(i * 5) % (chain - 1)] + 5),
                )
            })
            .collect();
        for (key, t) in &probes {
            let mut a: Vec<String> = heap_only
                .lookup_key_as_of(key, *t)
                .expect("heap lookup")
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            let mut b: Vec<String> = frozen
                .lookup_key_as_of(key, *t)
                .expect("segment lookup")
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "heap and segment answers must be byte-identical");
        }
        let mut i = 0usize;
        let heap_ns = time_ns(64, || {
            let (key, t) = &probes[i % probes.len()];
            i += 1;
            std::hint::black_box(heap_only.lookup_key_as_of(key, *t).expect("heap lookup"));
        });
        let mut j = 0usize;
        let seg_ns = time_ns(64, || {
            let (key, t) = &probes[j % probes.len()];
            j += 1;
            std::hint::black_box(frozen.lookup_key_as_of(key, *t).expect("segment lookup"));
        });
        let speedup_x1000 = heap_ns * 1000 / seg_ns.max(1);
        println!(
            "{:>6} | {:>8} | {:>8} | {:>7} | {:>7} | {:>9} | {:>9} | {:>7.2}x",
            chain,
            heap_stats.bytes_per_version,
            seg_stats.bytes_per_version,
            heap_stats.dup_factor_x1000,
            seg_stats.dup_factor_x1000,
            heap_ns,
            seg_ns,
            speedup_x1000 as f64 / 1000.0,
        );
        if chain == 32 {
            assert!(
                seg_stats.dup_factor_x1000 <= 1300,
                "segment duplication at chain 32 must stay ≤1.3x: {}",
                seg_stats.dup_factor_x1000
            );
            assert!(
                speedup_x1000 >= 2000,
                "segment point lookups at chain 32 must be ≥2x faster: {speedup_x1000}"
            );
        }
        rows.push(T16Row {
            chain_len: chain,
            keys: KEYS,
            frozen_versions: report.versions,
            heap_bytes_per_version: heap_stats.bytes_per_version,
            heap_dup_x1000: heap_stats.dup_factor_x1000,
            seg_bytes_per_version: seg_stats.bytes_per_version,
            seg_dup_x1000: seg_stats.dup_factor_x1000,
            seg_file_bytes: seg_stats.file_bytes,
            heap_lookup_ns: heap_ns,
            seg_lookup_ns: seg_ns,
            speedup_x1000,
        });
        drop(frozen);
        let _ = std::fs::remove_file(&seg_path);
    }
    println!("(the heap re-stores what a key's versions share and stabs a whole");
    println!(" timeslice per lookup; the segment stores prefix/suffix deltas and");
    println!(" walks one chain found by bloom filter + binary search)");
    rows
}

/// Emits the T17 sweep and the T16 heap-vs-segment comparison as
/// `BENCH_storage.json` (hand-rolled JSON, same discipline as the
/// other BENCH_* writers).
fn write_bench_storage_json(t17: &[T17Row], t16: &[T16Row]) {
    let mut out = String::from("{\n  \"experiment\": \"T17 physical storage shape\",\n");
    out.push_str("  \"chain_sweep\": [\n");
    for (i, r) in t17.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"chain_len\": {}, \"keys\": {}, \"versions\": {}, \"pages\": {}, \
             \"bytes_on_disk\": {}, \"occupancy_x1000\": {}, \"bytes_per_version\": {}, \
             \"dup_factor_x1000\": {}}}{}\n",
            r.chain_len,
            r.keys,
            r.versions,
            r.pages,
            r.bytes_on_disk,
            r.occupancy_x1000,
            r.bytes_per_version,
            r.dup_factor_x1000,
            if i + 1 < t17.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"frozen_segments\": [\n");
    for (i, r) in t16.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"chain_len\": {}, \"keys\": {}, \"frozen_versions\": {}, \
             \"heap_bytes_per_version\": {}, \"heap_dup_x1000\": {}, \
             \"seg_bytes_per_version\": {}, \"seg_dup_x1000\": {}, \
             \"seg_file_bytes\": {}, \"heap_lookup_ns\": {}, \"seg_lookup_ns\": {}, \
             \"speedup_x1000\": {}}}{}\n",
            r.chain_len,
            r.keys,
            r.frozen_versions,
            r.heap_bytes_per_version,
            r.heap_dup_x1000,
            r.seg_bytes_per_version,
            r.seg_dup_x1000,
            r.seg_file_bytes,
            r.heap_lookup_ns,
            r.seg_lookup_ns,
            r.speedup_x1000,
            if i + 1 < t16.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write("BENCH_storage.json", &out) {
        Ok(()) => println!("(wrote BENCH_storage.json)"),
        Err(e) => println!("(could not write BENCH_storage.json: {e})"),
    }
}
