//! Synthetic workload generators.
//!
//! The paper has no machine experiments, so its implementation claims
//! are measured here against synthetic faculty-style histories: a
//! population of entities whose attribute changes over time, with a
//! configurable mix of appends, logical deletes, corrections
//! (retroactive changes) and postactive entries — the four update shapes
//! the paper's taxonomy distinguishes.

use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::relation::{HistoricalOp, RowSelector, Validity};
use chronos_core::schema::{faculty_schema, Schema, TemporalSignature};
use chronos_core::tuple::{tuple, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The ranks entities cycle through.
pub const RANKS: [&str; 4] = ["assistant", "associate", "full", "emeritus"];

/// Parameters of a generated history.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Number of distinct entities.
    pub entities: usize,
    /// Number of transactions to generate.
    pub transactions: usize,
    /// Operations per transaction.
    pub ops_per_tx: usize,
    /// Probability (0–100) that a modification is a retroactive
    /// correction rather than a current-time change.
    pub correction_pct: u32,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            entities: 100,
            transactions: 200,
            ops_per_tx: 2,
            correction_pct: 25,
            seed: 42,
        }
    }
}

/// A generated transaction: commit time plus operations, guaranteed
/// valid against the history so far.
#[derive(Clone, Debug)]
pub struct GeneratedTx {
    /// The transaction time to commit at.
    pub tx_time: Chronon,
    /// The operations.
    pub ops: Vec<HistoricalOp>,
}

/// A deterministic bitemporal workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The schema the transactions target (`faculty (name, rank)`).
    pub schema: Schema,
    /// The transactions, in commit order.
    pub transactions: Vec<GeneratedTx>,
}

/// Generates a history of faculty-style transactions.
///
/// Ops are synthesized against a shadow historical state so every
/// generated transaction commits cleanly on any conforming store.
pub fn generate(spec: &WorkloadSpec) -> Workload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schema = faculty_schema();
    let mut shadow = HistoricalRelation::new(schema.clone(), TemporalSignature::Interval);
    let mut transactions = Vec::with_capacity(spec.transactions);
    let mut day = 1_000i64;

    for _ in 0..spec.transactions {
        let mut ops = Vec::with_capacity(spec.ops_per_tx);
        for _ in 0..spec.ops_per_tx {
            let op = synth_op(&mut rng, &shadow, spec, day);
            if let Some(op) = op {
                if shadow.apply(std::slice::from_ref(&op)).is_ok() {
                    ops.push(op);
                }
            }
        }
        if ops.is_empty() {
            // Always make progress: append a fresh fact.  A random draw
            // can collide with an existing row, so retry a few times.
            for _ in 0..8 {
                let op = fresh_insert(&mut rng, spec, day);
                if shadow.apply(std::slice::from_ref(&op)).is_ok() {
                    ops.push(op);
                    break;
                }
            }
        }
        if ops.is_empty() {
            day += 1;
            continue;
        }
        transactions.push(GeneratedTx {
            tx_time: Chronon::new(day),
            ops,
        });
        day += i64::from(rng.gen_range(1u32..4));
    }
    Workload {
        schema,
        transactions,
    }
}

fn entity_name(i: usize) -> String {
    format!("prof{i:05}")
}

fn fresh_insert(rng: &mut StdRng, spec: &WorkloadSpec, day: i64) -> HistoricalOp {
    let who = entity_name(rng.gen_range(0..spec.entities));
    let rank = RANKS[rng.gen_range(0..RANKS.len())];
    // Mostly current appends; occasionally postactive (future start).
    let start = if rng.gen_range(0u32..100) < 10 {
        day + i64::from(rng.gen_range(1u32..30))
    } else {
        day - i64::from(rng.gen_range(0u32..10))
    };
    HistoricalOp::insert(
        tuple([who.as_str(), rank]),
        Validity::Interval(Period::from_start(Chronon::new(start))),
    )
}

fn synth_op(
    rng: &mut StdRng,
    shadow: &HistoricalRelation,
    spec: &WorkloadSpec,
    day: i64,
) -> Option<HistoricalOp> {
    let roll = rng.gen_range(0u32..100);
    let rows = shadow.rows();
    if roll < 50 || rows.is_empty() {
        return Some(fresh_insert(rng, spec, day));
    }
    let row = &rows[rng.gen_range(0..rows.len())];
    let sel = RowSelector::exact(row.tuple.clone(), row.validity);
    if roll < 50 + spec.correction_pct {
        // Correction: restamp with a (possibly retroactive) period.
        let p = row.validity.period();
        let new_start = match p.start().finite() {
            Some(s) => s - i64::from(rng.gen_range(0u32..60)),
            None => Chronon::new(day - 100),
        };
        let new_end = if rng.gen_bool(0.5) {
            chronos_core::timepoint::TimePoint::INFINITY
        } else {
            chronos_core::timepoint::TimePoint::at(new_start + i64::from(rng.gen_range(1u32..400)))
        };
        let new_p = Period::clamped(new_start, new_end);
        if new_p.is_empty() {
            return None;
        }
        Some(HistoricalOp::set_validity(sel, Validity::Interval(new_p)))
    } else if roll < 90 {
        // Logical delete at `day`.
        let p = row.validity.period();
        let now = chronos_core::timepoint::TimePoint::at(Chronon::new(day));
        if p.end() <= now {
            None
        } else if p.start() >= now {
            Some(HistoricalOp::remove(sel))
        } else {
            Some(HistoricalOp::set_validity(
                sel,
                Validity::Interval(Period::clamped(p.start(), now)),
            ))
        }
    } else {
        // Error retraction.
        Some(HistoricalOp::remove(sel))
    }
}

/// A fragmented historical relation for coalescing experiments: each
/// entity's single logical period is split into `fragments` adjacent
/// pieces.
pub fn fragmented_relation(entities: usize, fragments: usize) -> HistoricalRelation {
    let schema = faculty_schema();
    let mut rel = HistoricalRelation::new(schema, TemporalSignature::Interval);
    for e in 0..entities {
        let who = entity_name(e);
        let rank = RANKS[e % RANKS.len()];
        let base = (e as i64) * 10;
        for f in 0..fragments {
            let a = base + (f as i64) * 30;
            let b = a + 30;
            rel.insert(
                tuple([who.as_str(), rank]),
                Validity::Interval(Period::new(Chronon::new(a), Chronon::new(b)).unwrap()),
            )
            .expect("fragments are distinct");
        }
    }
    rel
}

/// Static tuples for rollback-store workloads.
pub fn entity_tuples(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| tuple([entity_name(i).as_str(), RANKS[i % RANKS.len()]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::relation::temporal::{BitemporalTable, SnapshotTemporal, TemporalStore};

    #[test]
    fn generated_histories_commit_cleanly_everywhere() {
        let spec = WorkloadSpec {
            entities: 20,
            transactions: 50,
            ops_per_tx: 3,
            correction_pct: 30,
            seed: 7,
        };
        let w = generate(&spec);
        assert!(
            w.transactions.len() >= 45,
            "almost all transactions generated"
        );
        let mut cube = SnapshotTemporal::new(w.schema.clone(), TemporalSignature::Interval);
        let mut table = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
        for tx in &w.transactions {
            cube.commit(tx.tx_time, &tx.ops).expect("valid on cube");
            table.commit(tx.tx_time, &tx.ops).expect("valid on table");
        }
        assert_eq!(cube.current(), table.current());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.transactions.len(), b.transactions.len());
        for (x, y) in a.transactions.iter().zip(&b.transactions) {
            assert_eq!(x.tx_time, y.tx_time);
            assert_eq!(x.ops, y.ops);
        }
        let c = generate(&WorkloadSpec { seed: 43, ..spec });
        assert!(a
            .transactions
            .iter()
            .zip(&c.transactions)
            .any(|(x, y)| x.ops != y.ops));
    }

    #[test]
    fn fragmented_relation_shape() {
        let rel = fragmented_relation(10, 5);
        assert_eq!(rel.len(), 50);
        let coalesced = chronos_algebra::coalesce::coalesce(&rel).unwrap();
        assert_eq!(coalesced.len(), 10, "fragments merge to one row per entity");
    }
}
