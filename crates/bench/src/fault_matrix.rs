//! The crash-matrix torture harness.
//!
//! For every crash site in [`chronos_obs::fault::CRASH_SITES`] this
//! module runs the cycle the durability story is supposed to survive:
//!
//! 1. **workload** — a child process (re-executed from the current
//!    binary, armed via `CHRONOS_FAULT_*` environment variables) runs a
//!    fixed TQuel workload against a durable database;
//! 2. **crash** — the armed site kills the child with
//!    [`fault::CRASH_EXIT_CODE`] partway through;
//! 3. **recover** — the parent reopens the directory through an
//!    [`ObsBootstrap`], watching `/readyz` flip 503 → 200;
//! 4. **verify** — the recovered state must equal an in-memory oracle
//!    replaying the durable commit prefix, the journal's `recovery`
//!    event must agree with the bytes actually on disk, a torn tail
//!    must be journaled as `wal_truncated`, and every paper figure must
//!    still regenerate byte-identically.
//!
//! The same workload also runs in **unwind mode** (in-process, the
//! fault surfaces as an `Err` instead of killing the process) to prove
//! the error paths degrade gracefully: the failed operation reports an
//! error, a reopen recovers exactly the committed prefix, and the
//! workload then completes.
//!
//! Drivers: `tests/fault_matrix.rs` (tier-1) and
//! `EXPERIMENTS_ONLY=faults cargo run --bin experiments --release`
//! (the single-command form documented in the README).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::relation::temporal::TemporalStore as _;
use chronos_db::{Database, Engine, ObsBootstrap};
use chronos_obs::fault::{self, FaultPlan};
use chronos_obs::http_get;
use chronos_storage::wal::Wal;

/// The one site only the group-commit engine path exercises: plain
/// `Database::commit` syncs inline and never calls `Wal::group_sync`.
const GROUP_FSYNC_SITE: &str = "wal.group_fsync";

/// Environment variable carrying the child's database directory.
pub const CHILD_DIR_ENV: &str = "CHRONOS_FAULT_DIR";
/// Environment variable marking a process as a crash-matrix child.
pub const CHILD_MARK_ENV: &str = "CHRONOS_FAULT_CHILD";

/// The relation the workload drives.
pub const RELATION: &str = "faculty";

fn d(s: &str) -> Chronon {
    date(s).expect("fixed workload date parses")
}

/// One step of the deterministic workload.  Each step advances the
/// manual clock to its date first, so transaction times are a pure
/// function of the step index — identical in the child, the oracle,
/// and any retry.
pub enum Step {
    /// A TQuel statement (DDL or modification).
    Stmt(&'static str, &'static str),
    /// A read-only query (drives the scan/pager paths; no state).
    Query(&'static str, &'static str),
    /// `Database::checkpoint()`.
    Checkpoint(&'static str),
    /// `Database::freeze_relation(RELATION)` — migrates closed
    /// versions into a segment (no logical state; the heap stays
    /// authoritative until the segment is durable and mapped).
    Freeze(&'static str),
}

/// The fixed workload: 6 commits around one checkpoint, plus a query.
/// It exercises every registered crash site — WAL appends (commits),
/// WAL reset + checkpoint save (the checkpoint), pager allocate/read
/// and heap insert (physical applies), and the journal (every step).
pub const STEPS: &[Step] = &[
    Step::Stmt(
        "01/01/80",
        "create faculty (name = str, rank = str) as temporal",
    ),
    Step::Stmt(
        "02/01/80",
        r#"append to faculty (name = "Merrie", rank = "associate")"#,
    ),
    Step::Stmt(
        "03/01/80",
        r#"append to faculty (name = "Tom", rank = "assistant")"#,
    ),
    Step::Stmt(
        "04/01/80",
        r#"range of f is faculty replace f (rank = "full") where f.name = "Merrie""#,
    ),
    Step::Query(
        "04/15/80",
        r#"range of f is faculty retrieve (f.name, f.rank)"#,
    ),
    Step::Checkpoint("05/01/80"),
    Step::Stmt(
        "06/01/80",
        r#"append to faculty (name = "Mike", rank = "assistant")"#,
    ),
    Step::Stmt(
        "07/01/80",
        r#"range of f is faculty delete f where f.name = "Tom""#,
    ),
    Step::Stmt(
        "08/01/80",
        r#"append to faculty (name = "Ann", rank = "lecturer")"#,
    ),
    // The replace and the delete above closed two versions: freezable.
    Step::Freeze("09/01/80"),
];

/// Number of commit steps in [`STEPS`].
pub fn total_commits() -> usize {
    STEPS
        .iter()
        .filter(|s| matches!(s, Step::Stmt(_, stmt) if !stmt.starts_with("create")))
        .count()
}

/// Runs `STEPS[from..]`, advancing `clock` per step.  Returns the index
/// of the first failing step with its error.
pub fn run_steps(
    db: &mut Database,
    clock: &ManualClock,
    from: usize,
) -> Result<(), (usize, String)> {
    for (i, step) in STEPS.iter().enumerate().skip(from) {
        match step {
            Step::Stmt(day, stmt) => {
                clock.advance_to(d(day));
                db.session().run(stmt).map_err(|e| (i, e.to_string()))?;
            }
            Step::Query(day, q) => {
                clock.advance_to(d(day));
                db.session().query(q).map_err(|e| (i, e.to_string()))?;
            }
            Step::Checkpoint(day) => {
                clock.advance_to(d(day));
                db.checkpoint().map_err(|e| (i, e.to_string()))?;
            }
            Step::Freeze(day) => {
                clock.advance_to(d(day));
                db.freeze_relation(RELATION)
                    .map_err(|e| (i, e.to_string()))?;
            }
        }
    }
    Ok(())
}

/// [`run_steps`] through a shared [`Engine`]: every statement runs in
/// a fresh snapshot-pinned session, so each commit is one group-commit
/// batch and every data-carrying `Wal::group_sync` is a scheduled hit
/// of the `wal.group_fsync` site.
pub fn run_steps_engine(
    engine: &std::sync::Arc<Engine>,
    clock: &ManualClock,
    from: usize,
) -> Result<(), (usize, String)> {
    for (i, step) in STEPS.iter().enumerate().skip(from) {
        match step {
            Step::Stmt(day, stmt) => {
                clock.advance_to(d(day));
                engine.session().run(stmt).map_err(|e| (i, e.to_string()))?;
            }
            Step::Query(day, q) => {
                clock.advance_to(d(day));
                engine.session().query(q).map_err(|e| (i, e.to_string()))?;
            }
            Step::Checkpoint(day) => {
                clock.advance_to(d(day));
                engine.checkpoint().map_err(|e| (i, e.to_string()))?;
            }
            Step::Freeze(day) => {
                clock.advance_to(d(day));
                engine
                    .session()
                    .run("freeze faculty")
                    .map_err(|e| (i, e.to_string()))?;
            }
        }
    }
    Ok(())
}

/// Builds the in-memory oracle holding the first `commits` commits of
/// the workload (the DDL always runs; checkpoints and queries are
/// no-ops for logical state).
pub fn oracle_with_commits(commits: usize) -> Database {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(Arc::clone(&clock) as _);
    let mut done = 0usize;
    for step in STEPS {
        match step {
            Step::Stmt(day, stmt) => {
                let is_commit = !stmt.starts_with("create");
                if is_commit && done >= commits {
                    break;
                }
                clock.advance_to(d(day));
                db.session().run(stmt).expect("oracle workload step");
                if is_commit {
                    done += 1;
                }
            }
            Step::Query(..) | Step::Checkpoint(_) | Step::Freeze(_) => {}
        }
    }
    db
}

/// Canonical, order-independent rendering of a temporal relation's
/// complete bitemporal content (tuples, valid time, transaction time).
pub fn canonical_rows(db: &Database, relation: &str) -> Result<Vec<String>, String> {
    let Some(rel) = db.relation(relation) else {
        return Ok(Vec::new());
    };
    let rows = rel
        .as_temporal()
        .scan_rows()
        .map_err(|e| format!("scan_rows: {e}"))?;
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    Ok(out)
}

/// Concatenation of every paper figure — the byte-identity baseline.
pub fn figures_digest() -> String {
    use crate::figures as f;
    [
        f::render_figure_1(),
        f::render_figure_2(),
        f::render_figure_3(),
        f::render_figure_4(),
        f::render_figure_5(),
        f::render_figure_6(),
        f::render_figure_7(),
        f::render_figure_8(),
        f::render_figure_9(),
        f::render_figure_10(),
        f::render_figure_11(),
        f::render_figure_12(),
        f::render_figure_13(),
    ]
    .concat()
}

/// Per-site schedule: which hit to fault, and the torn-write length
/// for the torn site.  Hits are chosen so every fault lands *mid*
/// workload (after some durable commits, before others).
pub struct SiteSpec {
    /// Site name (from [`fault::CRASH_SITES`]).
    pub site: &'static str,
    /// 1-based hit to fault on, counted from child process start.
    pub hit: u64,
    /// Torn-write prefix length, for the write site.
    pub keep: Option<usize>,
}

/// The matrix rows: every registered crash site, each with a hit count
/// placing the fault inside the workload.
pub fn site_specs() -> Vec<SiteSpec> {
    let spec = |site: &'static str, hit: u64, keep: Option<usize>| SiteSpec { site, hit, keep };
    let specs = vec![
        spec("wal.append.pre_frame", 2, None),
        spec("wal.append.frame", 3, Some(5)),
        spec("wal.append.pre_sync", 2, None),
        spec("wal.append.post_sync", 1, None),
        spec("wal.reset.pre_truncate", 1, None),
        spec("wal.reset.post_truncate", 1, None),
        spec("pager.read.miss", 1, None),
        spec("pager.allocate", 1, None),
        spec("heap.insert", 3, None),
        spec("table.commit.apply", 2, None),
        spec("checkpoint.save.pre_write", 1, None),
        spec("checkpoint.save.pre_rename", 1, None),
        spec("checkpoint.save.post_rename", 1, None),
        // The journal emits from the first open on; hit 6 lands inside
        // the commit stretch of the workload.
        spec("journal.emit", 6, None),
        // The freeze step runs once, at the end of the workload; all 6
        // commits are durable when it dies, and the heap stays
        // authoritative at every point in the segment's tmp → fsync →
        // rename → mmap-validate pipeline.
        spec("segment.write", 1, None),
        spec("segment.rename", 1, None),
        spec("segment.mmap_open", 1, None),
        // Engine path only: a serial run of the 6-commit workload makes
        // 6 data-carrying group syncs; hit 4 is the first commit after
        // the checkpoint, so the crash leaves 3 commits durable (all
        // covered by the checkpoint image) and an empty log.
        spec(GROUP_FSYNC_SITE, 4, None),
    ];
    // The schedule and the registry must cover the same sites, or the
    // matrix silently under-tests.
    let registered: std::collections::BTreeSet<&str> =
        fault::CRASH_SITES.iter().map(|(s, _)| *s).collect();
    let scheduled: std::collections::BTreeSet<&str> = specs.iter().map(|s| s.site).collect();
    assert_eq!(
        registered, scheduled,
        "crash-site schedule out of sync with fault::CRASH_SITES"
    );
    specs
}

/// If this process is a crash-matrix child, run the workload (the
/// armed site will kill it) and never return.  Call first thing in any
/// binary that [`run_crash_matrix`] may re-execute.
pub fn maybe_run_child() {
    if std::env::var(CHILD_MARK_ENV).is_err() {
        return;
    }
    let dir = PathBuf::from(std::env::var(CHILD_DIR_ENV).expect("child needs CHRONOS_FAULT_DIR"));
    fault::arm_from_env();
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let obs = ObsBootstrap::new();
    let mut db = match Database::open_with_obs(&dir, Arc::clone(&clock) as _, &obs) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("fault child: open failed: {e}");
            std::process::exit(3);
        }
    };
    if std::env::var("CHRONOS_FAULT_SITE").as_deref() == Ok(GROUP_FSYNC_SITE) {
        // Route the workload through the group-commit engine; the
        // crash fires on its writer thread and kills the process.
        let engine = Engine::start(db);
        match run_steps_engine(&engine, &clock, 0) {
            Ok(()) => {
                engine.shutdown();
                println!("fault child: workload completed without crashing");
                std::process::exit(0);
            }
            Err((i, e)) => {
                eprintln!("fault child: step {i} unwound instead of crashing: {e}");
                std::process::exit(4);
            }
        }
    }
    match run_steps(&mut db, &clock, 0) {
        Ok(()) => {
            // The armed site never fired (or only unwound): the parent
            // treats exit 0 as "site not exercised" and fails the row.
            println!("fault child: workload completed without crashing");
            std::process::exit(0);
        }
        Err((i, e)) => {
            eprintln!("fault child: step {i} unwound instead of crashing: {e}");
            std::process::exit(4);
        }
    }
}

/// Runs the crash matrix: for every site spec, spawn a child of
/// `child_exe child_args..` with the fault armed, assert it dies with
/// [`fault::CRASH_EXIT_CODE`], recover the directory, and verify.
/// Returns one human-readable summary line per site, or a combined
/// failure report.
pub fn run_crash_matrix(child_exe: &Path, child_args: &[String]) -> Result<Vec<String>, String> {
    let baseline = figures_digest();
    let mut summaries = Vec::new();
    let mut failures = Vec::new();
    for spec in site_specs() {
        match run_one_site(child_exe, child_args, &spec, &baseline) {
            Ok(line) => summaries.push(line),
            Err(e) => failures.push(format!("{}: {e}", spec.site)),
        }
    }
    if failures.is_empty() {
        Ok(summaries)
    } else {
        Err(format!(
            "{} of {} crash sites failed verification:\n  {}",
            failures.len(),
            site_specs().len(),
            failures.join("\n  ")
        ))
    }
}

fn matrix_dir(site: &str) -> PathBuf {
    let safe = site.replace('.', "-");
    let dir = std::env::temp_dir().join(format!("chronos-faultmx-{safe}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_one_site(
    child_exe: &Path,
    child_args: &[String],
    spec: &SiteSpec,
    figures_baseline: &str,
) -> Result<String, String> {
    let dir = matrix_dir(spec.site);
    // 1 + 2: workload in a child, killed at the armed site.
    let mut cmd = Command::new(child_exe);
    cmd.args(child_args)
        .env(CHILD_MARK_ENV, "1")
        .env(CHILD_DIR_ENV, &dir)
        .env("CHRONOS_FAULT_SITE", spec.site)
        .env("CHRONOS_FAULT_HIT", spec.hit.to_string())
        .env("CHRONOS_FAULT_MODE", "crash")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped());
    match spec.keep {
        Some(k) => {
            cmd.env("CHRONOS_FAULT_KEEP", k.to_string());
        }
        None => {
            cmd.env_remove("CHRONOS_FAULT_KEEP");
        }
    }
    let out = cmd.output().map_err(|e| format!("spawning child: {e}"))?;
    let code = out.status.code();
    if code != Some(fault::CRASH_EXIT_CODE) {
        return Err(format!(
            "child exited with {code:?}, want {} (stderr: {})",
            fault::CRASH_EXIT_CODE,
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    // What is actually durable on disk, before recovery touches it.
    let on_disk = Wal::recover(&dir.join("wal")).map_err(|e| format!("pre-recovery scan: {e}"))?;
    let floor = chronos_db::checkpoint::load(&dir.join("checkpoint"))
        .map_err(|e| format!("pre-recovery checkpoint load: {e}"))?
        .and_then(|c| c.wal_floor);
    let expect_replayed = on_disk
        .records
        .iter()
        .filter(|r| floor.is_none_or(|f| r.tx_time > f))
        .count();
    let expect_skipped = on_disk.records.len() - expect_replayed;

    // 3: recover behind a live exporter; /readyz must flip 503 → 200.
    let obs = ObsBootstrap::new();
    let server = obs
        .serve("127.0.0.1:0")
        .map_err(|e| format!("exporter: {e}"))?;
    let addr = server.addr().to_string();
    let (pre, _) = http_get(&addr, "/readyz").map_err(|e| format!("readyz pre: {e}"))?;
    if pre != 503 {
        return Err(format!("/readyz before recovery was {pre}, want 503"));
    }
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open_with_obs(&dir, clock as _, &obs)
        .map_err(|e| format!("recovery failed: {e}"))?;
    let (post, _) = http_get(&addr, "/readyz").map_err(|e| format!("readyz post: {e}"))?;
    if post != 200 {
        return Err(format!("/readyz after recovery was {post}, want 200"));
    }

    // 4a: oracle equality over the durable commit prefix.
    let commits = db
        .relation(RELATION)
        .map(|r| r.as_temporal().transactions())
        .unwrap_or(0);
    if commits > total_commits() {
        return Err(format!(
            "recovered {commits} commits, workload only has {}",
            total_commits()
        ));
    }
    let oracle = oracle_with_commits(commits);
    let got = canonical_rows(&db, RELATION)?;
    let want = canonical_rows(&oracle, RELATION)?;
    if got != want {
        return Err(format!(
            "recovered state diverges from oracle at {commits} commits:\n  got: {got:#?}\n  want: {want:#?}"
        ));
    }

    // 4b: the journal's recovery event must match the bytes on disk.
    let journal =
        std::fs::read_to_string(dir.join("events.jsonl")).map_err(|e| format!("journal: {e}"))?;
    let recovery_line = journal
        .lines()
        .rfind(|l| l.contains("\"event\": \"recovery\""))
        .ok_or("no recovery event journaled")?;
    for (field, value) in [
        ("frames_replayed", expect_replayed as u64),
        ("frames_skipped", expect_skipped as u64),
        ("truncated_at", on_disk.valid_len),
    ] {
        let needle = format!("\"{field}\": {value}");
        if !recovery_line.contains(&needle) {
            return Err(format!(
                "recovery event lacks {needle} (line: {})",
                recovery_line.trim()
            ));
        }
    }
    if on_disk.torn_bytes > 0 && !journal.contains("\"event\": \"wal_truncated\"") {
        return Err("torn tail on disk but no wal_truncated event journaled".into());
    }

    // 4c: the paper figures still regenerate byte-identically.
    if figures_digest() != figures_baseline {
        return Err("paper figures no longer regenerate byte-identically".into());
    }

    drop(db);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "{:<28} hit {} → crash; {} commits durable ({} replayed, {} skipped, {} torn bytes); oracle + journal + readyz + figures ok",
        spec.site, spec.hit, commits, expect_replayed, expect_skipped, on_disk.torn_bytes
    ))
}

/// Runs the unwind matrix in-process: every site fires as an injected
/// `Err` instead of a crash.  The faulted operation must fail
/// gracefully (no panic, no poisoned state): after a reopen the
/// database holds exactly the committed prefix, the workload retries
/// to completion, and the final state equals the full oracle.
pub fn run_unwind_matrix() -> Result<Vec<String>, String> {
    let mut summaries = Vec::new();
    let mut failures = Vec::new();
    for spec in site_specs() {
        let outcome = if spec.site == GROUP_FSYNC_SITE {
            run_one_unwind_engine(&spec)
        } else {
            run_one_unwind(&spec)
        };
        match outcome {
            Ok(line) => summaries.push(line),
            Err(e) => failures.push(format!("{}: {e}", spec.site)),
        }
    }
    fault::clear();
    if failures.is_empty() {
        Ok(summaries)
    } else {
        Err(format!(
            "{} of {} unwind sites failed verification:\n  {}",
            failures.len(),
            site_specs().len(),
            failures.join("\n  ")
        ))
    }
}

fn run_one_unwind(spec: &SiteSpec) -> Result<String, String> {
    let dir = matrix_dir(&format!("unwind.{}", spec.site));
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db =
        Database::open(&dir, Arc::clone(&clock) as _).map_err(|e| format!("initial open: {e}"))?;
    // Arm after open so hit 1 lands in the workload, not in recovery.
    fault::install(Arc::new(FaultPlan {
        site: spec.site.to_string(),
        hit: 1,
        torn_keep: spec.keep,
        unwind: true,
    }));
    let outcome = run_steps(&mut db, &clock, 0);
    fault::clear();
    let detail;
    match outcome {
        Err((failed_at, err)) => {
            if !err.contains("injected fault") && !err.contains(spec.site) {
                return Err(format!(
                    "step {failed_at} failed with an unrelated error: {err}"
                ));
            }
            // The process survived; a restart must see a consistent
            // prefix, after which the workload completes.
            drop(db);
            let mut db2 = Database::open(&dir, Arc::clone(&clock) as _)
                .map_err(|e| format!("reopen after injected error: {e}"))?;
            let commits = db2
                .relation(RELATION)
                .map(|r| r.as_temporal().transactions())
                .unwrap_or(0);
            let oracle = oracle_with_commits(commits);
            if canonical_rows(&db2, RELATION)? != canonical_rows(&oracle, RELATION)? {
                return Err(format!(
                    "state after injected error diverges from oracle at {commits} commits"
                ));
            }
            run_steps(&mut db2, &clock, failed_at)
                .map_err(|(i, e)| format!("retry from step {i} failed: {e}"))?;
            db = db2;
            detail = format!("error at step {failed_at}, retried");
        }
        Ok(()) => {
            // Only the journal site may swallow its fault (dropped
            // diagnostic event, by contract).
            if spec.site != "journal.emit" {
                return Err("workload completed but the site should have unwound".into());
            }
            detail = "fault swallowed (diagnostic path)".to_string();
        }
    }
    let oracle = oracle_with_commits(total_commits());
    if canonical_rows(&db, RELATION)? != canonical_rows(&oracle, RELATION)? {
        return Err("final state diverges from the full oracle".into());
    }
    drop(db);
    // And the completed state is durable.
    let db3 = Database::open(&dir, Arc::new(ManualClock::new(d("01/01/81"))) as _)
        .map_err(|e| format!("final reopen: {e}"))?;
    if canonical_rows(&db3, RELATION)? != canonical_rows(&oracle, RELATION)? {
        return Err("durable state diverges from the full oracle".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "{:<28} {detail}; full-oracle equality ok",
        spec.site
    ))
}

/// Unwind coverage for the group-fsync site, which only the engine's
/// group-commit path reaches.  A failed group fsync must error-ack the
/// batch, poison the engine (no further submissions), and leave the
/// acked commit prefix on disk; a fresh engine over a reopened
/// database then completes the workload.
fn run_one_unwind_engine(spec: &SiteSpec) -> Result<String, String> {
    let dir = matrix_dir(&format!("unwind.{}", spec.site));
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let db =
        Database::open(&dir, Arc::clone(&clock) as _).map_err(|e| format!("initial open: {e}"))?;
    let engine = Engine::start(db);
    // Arm after open so hit 1 lands in the workload, not in recovery.
    fault::install(Arc::new(FaultPlan {
        site: spec.site.to_string(),
        hit: 1,
        torn_keep: spec.keep,
        unwind: true,
    }));
    let outcome = run_steps_engine(&engine, &clock, 0);
    fault::clear();
    let (failed_at, err) = match outcome {
        Err(pair) => pair,
        Ok(()) => {
            engine.shutdown();
            return Err("workload completed but the group fsync should have unwound".into());
        }
    };
    if !err.contains("injected fault") && !err.contains(spec.site) {
        engine.shutdown();
        return Err(format!(
            "step {failed_at} failed with an unrelated error: {err}"
        ));
    }
    // A durability failure poisons the engine: retrying on the same
    // instance must be refused, not silently absorbed.
    match run_steps_engine(&engine, &clock, failed_at) {
        Err((_, e)) if e.contains("poisoned") => {}
        Err((i, e)) => {
            engine.shutdown();
            return Err(format!(
                "poisoned engine failed step {i} with the wrong error: {e}"
            ));
        }
        Ok(()) => {
            engine.shutdown();
            return Err("poisoned engine accepted further commits".into());
        }
    }
    engine.shutdown();
    drop(engine);
    // A restart sees exactly the acked prefix…
    let db2 = Database::open(&dir, Arc::clone(&clock) as _)
        .map_err(|e| format!("reopen after injected error: {e}"))?;
    let commits = db2
        .relation(RELATION)
        .map(|r| r.as_temporal().transactions())
        .unwrap_or(0);
    let oracle = oracle_with_commits(commits);
    if canonical_rows(&db2, RELATION)? != canonical_rows(&oracle, RELATION)? {
        return Err(format!(
            "state after injected error diverges from oracle at {commits} commits"
        ));
    }
    // …and a fresh engine completes the workload.
    let engine2 = Engine::start(db2);
    run_steps_engine(&engine2, &clock, failed_at)
        .map_err(|(i, e)| format!("retry from step {i} failed: {e}"))?;
    let oracle = oracle_with_commits(total_commits());
    let want = canonical_rows(&oracle, RELATION)?;
    let got = engine2.with_db(|db| canonical_rows(db, RELATION))?;
    if got != want {
        return Err("final state diverges from the full oracle".into());
    }
    engine2.shutdown();
    drop(engine2);
    // And the completed state is durable.
    let db3 = Database::open(&dir, Arc::new(ManualClock::new(d("01/01/81"))) as _)
        .map_err(|e| format!("final reopen: {e}"))?;
    if canonical_rows(&db3, RELATION)? != want {
        return Err("durable state diverges from the full oracle".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "{:<28} error at step {failed_at}, poisoned, reopened + retried; full-oracle equality ok",
        spec.site
    ))
}
