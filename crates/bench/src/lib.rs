//! # chronos-bench
//!
//! Workload generators and the harnesses that regenerate every figure
//! and measured claim of the paper.
//!
//! * `cargo run -p chronos-bench --bin figures` prints Figures 1–13 and
//!   the four worked queries, with their exact paper answers asserted;
//! * `cargo run -p chronos-bench --bin experiments --release` runs the
//!   quantitative experiments (E14–E20 in DESIGN.md) and prints the
//!   tables recorded in EXPERIMENTS.md;
//! * `cargo bench -p chronos-bench` runs the criterion benchmarks behind
//!   those experiments.

pub mod fault_matrix;
pub mod figures;
pub mod workload;
