//! Builders and renderers for every figure of the paper.
//!
//! Each `figure_N` function reconstructs the paper's Figure N from live
//! ChronosDB objects — never from hard-coded output — and each
//! `render_figure_N` lays it out in the paper's tabular shape.  The
//! `figures` binary prints them all; `tests/paper_figures.rs` asserts
//! the contents row by row.

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::prelude::*;
use chronos_core::relation::temporal::BitemporalRow;
use chronos_core::render::{check, TextTable};
use chronos_core::schema::faculty_schema;
use chronos_core::taxonomy::literature::{figure_1 as fig1_rows, figure_13 as fig13_rows};
use chronos_core::taxonomy::{classify, DatabaseClass, TimeKind};
use chronos_core::value::Value;

/// `d("12/01/82")` — panic-free only for valid paper dates.
pub fn d(s: &str) -> Chronon {
    date(s).expect("paper dates are valid")
}

fn p(from: &str, to: &str) -> Period {
    Period::new(d(from), d(to)).expect("paper periods are forwards")
}

fn open(from: &str) -> Period {
    Period::from_start(d(from))
}

// ---------------------------------------------------------------------
// Figure 1 — types of time in the prior literature
// ---------------------------------------------------------------------

/// Renders Figure 1.
pub fn render_figure_1() -> String {
    let mut t = TextTable::new([
        "Reference",
        "Terminology",
        "Append-Only",
        "Application Independent",
        "Representation vs. Reality",
    ]);
    for row in fig1_rows() {
        let term = if row.unsupported {
            format!("{} (1)", row.terminology)
        } else {
            row.terminology.to_string()
        };
        t.push_row([
            row.reference.to_string(),
            term,
            row.append_only.to_string(),
            if row.application_independent {
                "Yes"
            } else {
                "No"
            }
            .to_string(),
            row.models.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nNotes: (1) not actually supported by the system\n       (2) can make corrections only\n       (3) can make changes only in the future\n       (4) reality is indicated only in the future\n",
    );
    out
}

// ---------------------------------------------------------------------
// Figure 2 — a static relation, and the Quel query
// ---------------------------------------------------------------------

/// Builds the static `faculty` instance of Figure 2.
pub fn figure_2() -> StaticRelation {
    let mut r = StaticRelation::new(faculty_schema());
    r.insert(tuple(["Merrie", "full"])).expect("fresh");
    r.insert(tuple(["Tom", "associate"])).expect("fresh");
    r
}

/// Renders Figure 2.
pub fn render_figure_2() -> String {
    let r = figure_2();
    let mut t = TextTable::new(["name", "rank"]);
    for row in r.iter() {
        t.push_row([row.get(0).to_string(), row.get(1).to_string()]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Figures 3 & 4 — static rollback relations
// ---------------------------------------------------------------------

/// The abstract three-transaction history of Figure 3, applied to a
/// snapshot-cube rollback store: (1) add three tuples, (2) add one,
/// (3) delete one entered in the first transaction and add another.
pub fn figure_3() -> SnapshotRollback {
    let schema = Schema::new(vec![Attribute::new("tuple", AttrType::Str)]).expect("valid");
    let mut r = SnapshotRollback::new(schema);
    r.begin()
        .insert(tuple(["t1"]))
        .insert(tuple(["t2"]))
        .insert(tuple(["t3"]))
        .commit(Chronon::new(1))
        .expect("tx 1");
    r.begin()
        .insert(tuple(["t4"]))
        .commit(Chronon::new(2))
        .expect("tx 2");
    r.begin()
        .delete(tuple(["t2"]))
        .insert(tuple(["t5"]))
        .commit(Chronon::new(3))
        .expect("tx 3");
    r
}

/// Renders Figure 3 as the sequence of static states (the vertical
/// slices of the paper's cube).
pub fn render_figure_3() -> String {
    let r = figure_3();
    let mut out = String::new();
    for (i, (t, state)) in r.states().iter().enumerate() {
        let members: Vec<String> = state
            .sorted()
            .iter()
            .map(|x| x.get(0).to_string())
            .collect();
        out.push_str(&format!(
            "after transaction {} (tx time {}): {{{}}}\n",
            i + 1,
            t.ticks(),
            members.join(", ")
        ));
    }
    out
}

/// Builds the tuple-timestamped rollback `faculty` relation of Figure 4.
pub fn figure_4() -> TimestampedRollback {
    let mut r = TimestampedRollback::new(faculty_schema());
    r.begin()
        .insert(tuple(["Merrie", "associate"]))
        .commit(d("08/25/77"))
        .expect("tx");
    r.begin()
        .insert(tuple(["Tom", "associate"]))
        .commit(d("12/07/82"))
        .expect("tx");
    r.begin()
        .replace(tuple(["Merrie", "associate"]), tuple(["Merrie", "full"]))
        .commit(d("12/15/82"))
        .expect("tx");
    r.begin()
        .insert(tuple(["Mike", "assistant"]))
        .commit(d("01/10/83"))
        .expect("tx");
    r.begin()
        .delete(tuple(["Mike", "assistant"]))
        .commit(d("02/25/84"))
        .expect("tx");
    r
}

/// Renders Figure 4 in the paper's row order.
pub fn render_figure_4() -> String {
    let r = figure_4();
    let mut t =
        TextTable::new(["name", "rank", "tx (start)", "tx (end)"]).with_double_bar_before(2);
    let mut rows = r.rows().to_vec();
    sort_like_paper(&mut rows, |row| (row.tuple.clone(), row.tx.start()));
    for row in rows {
        t.push_row([
            row.tuple.get(0).to_string(),
            row.tuple.get(1).to_string(),
            row.tx.start().to_string(),
            row.tx.end().to_string(),
        ]);
    }
    t.render()
}

/// Orders rows the way the paper prints them: grouped by entity (first
/// attribute) in order of first appearance, then by the given key.
fn sort_like_paper<R, K: Ord>(rows: &mut [R], key: impl Fn(&R) -> (Tuple, K))
where
    R: Clone,
{
    // Entity order of first appearance.
    let mut first_seen: Vec<String> = Vec::new();
    for r in rows.iter() {
        let (t, _) = key(r);
        let name = t.get(0).to_string();
        if !first_seen.contains(&name) {
            first_seen.push(name);
        }
    }
    rows.sort_by(|a, b| {
        let (ta, ka) = key(a);
        let (tb, kb) = key(b);
        let ia = first_seen.iter().position(|n| *n == ta.get(0).to_string());
        let ib = first_seen.iter().position(|n| *n == tb.get(0).to_string());
        ia.cmp(&ib).then(ka.cmp(&kb))
    });
}

// ---------------------------------------------------------------------
// Figures 5 & 6 — historical relations
// ---------------------------------------------------------------------

/// Figure 5: the same transaction stream as Figure 3 on a *historical*
/// relation, followed by a fourth, correcting transaction impossible on
/// a rollback store: the erroneous tuple from the first transaction is
/// removed outright.
pub fn figure_5() -> Vec<(usize, HistoricalRelation)> {
    let schema = Schema::new(vec![Attribute::new("tuple", AttrType::Str)]).expect("valid");
    let mut r = HistoricalRelation::new(schema, TemporalSignature::Interval);
    let v = |from: i64| Validity::Interval(Period::from_start(Chronon::new(from)));
    let mut states = Vec::new();
    r.insert(tuple(["t1"]), v(1)).expect("fresh");
    r.insert(tuple(["t2"]), v(1)).expect("fresh");
    r.insert(tuple(["t3"]), v(1)).expect("fresh");
    states.push((1, r.clone()));
    r.insert(tuple(["t4"]), v(2)).expect("fresh");
    states.push((2, r.clone()));
    r.insert(tuple(["t5"]), v(3)).expect("fresh");
    r.set_validity(
        &RowSelector::tuple(tuple(["t2"])),
        Validity::Interval(Period::new(Chronon::new(1), Chronon::new(3)).expect("fwd")),
    )
    .expect("t2 exists");
    states.push((3, r.clone()));
    // The correcting transaction: t3 should never have been there.
    r.remove(&RowSelector::tuple(tuple(["t3"])))
        .expect("t3 exists");
    states.push((4, r));
    states
}

/// Renders Figure 5 as the evolving single historical state.
pub fn render_figure_5() -> String {
    let mut out = String::new();
    for (i, state) in figure_5() {
        let members: Vec<String> = state
            .sorted_rows()
            .iter()
            .map(|r| format!("{} {}", r.tuple.get(0), r.validity))
            .collect();
        out.push_str(&format!(
            "after modification {i}: {{{}}}\n",
            members.join(", ")
        ));
    }
    out
}

/// Builds the historical `faculty` relation of Figure 6.
pub fn figure_6() -> HistoricalRelation {
    let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
    r.insert(tuple(["Merrie", "associate"]), p("09/01/77", "12/01/82"))
        .expect("fresh");
    r.insert(tuple(["Merrie", "full"]), open("12/01/82"))
        .expect("fresh");
    r.insert(tuple(["Tom", "associate"]), open("12/05/82"))
        .expect("fresh");
    r.insert(tuple(["Mike", "assistant"]), p("01/01/83", "03/01/84"))
        .expect("fresh");
    r
}

/// Renders Figure 6 in the paper's row order.
pub fn render_figure_6() -> String {
    let r = figure_6();
    let mut t =
        TextTable::new(["name", "rank", "valid (from)", "valid (to)"]).with_double_bar_before(2);
    let mut rows = r.rows().to_vec();
    sort_like_paper(&mut rows, |row| {
        (row.tuple.clone(), row.validity.period().start())
    });
    for row in rows {
        let per = row.validity.period();
        t.push_row([
            row.tuple.get(0).to_string(),
            row.tuple.get(1).to_string(),
            per.start().to_string(),
            per.end().to_string(),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Figures 7 & 8 — temporal relations
// ---------------------------------------------------------------------

/// Figure 7: a temporal relation as the sequence of historical states
/// after four transactions: (1) add three, (2) add one, (3) add one and
/// delete one, (4) delete an erroneous earlier tuple.
pub fn figure_7() -> SnapshotTemporal {
    let schema = Schema::new(vec![Attribute::new("tuple", AttrType::Str)]).expect("valid");
    let mut r = SnapshotTemporal::new(schema, TemporalSignature::Interval);
    let v = |from: i64| Validity::Interval(Period::from_start(Chronon::new(from)));
    r.begin()
        .insert(tuple(["t1"]), v(1))
        .insert(tuple(["t2"]), v(1))
        .insert(tuple(["t3"]), v(1))
        .commit(Chronon::new(1))
        .expect("tx 1");
    r.begin()
        .insert(tuple(["t4"]), v(2))
        .commit(Chronon::new(2))
        .expect("tx 2");
    r.begin()
        .insert(tuple(["t5"]), v(3))
        .set_validity(
            RowSelector::tuple(tuple(["t2"])),
            Validity::Interval(Period::new(Chronon::new(1), Chronon::new(3)).expect("fwd")),
        )
        .commit(Chronon::new(3))
        .expect("tx 3");
    r.begin()
        .remove(RowSelector::tuple(tuple(["t3"])))
        .commit(Chronon::new(4))
        .expect("tx 4");
    r
}

/// Renders Figure 7 as the append-only sequence of historical states.
pub fn render_figure_7() -> String {
    let r = figure_7();
    let mut out = String::new();
    for (i, (t, state)) in r.states().iter().enumerate() {
        let members: Vec<String> = state
            .sorted_rows()
            .iter()
            .map(|row| format!("{} {}", row.tuple.get(0), row.validity))
            .collect();
        out.push_str(&format!(
            "historical state after transaction {} (tx time {}): {{{}}}\n",
            i + 1,
            t.ticks(),
            members.join(", ")
        ));
    }
    out
}

/// Drives the six transactions that produce Figure 8 against any
/// temporal store.
pub fn drive_figure_8<S: chronos_core::relation::temporal::TemporalStore>(s: &mut S) {
    s.begin()
        .insert(tuple(["Merrie", "associate"]), open("09/01/77"))
        .commit(d("08/25/77"))
        .expect("tx");
    s.begin()
        .insert(tuple(["Tom", "full"]), open("12/05/82"))
        .commit(d("12/01/82"))
        .expect("tx");
    s.begin()
        .remove(RowSelector::tuple(tuple(["Tom", "full"])))
        .insert(tuple(["Tom", "associate"]), open("12/05/82"))
        .commit(d("12/07/82"))
        .expect("tx");
    s.begin()
        .set_validity(
            RowSelector::tuple(tuple(["Merrie", "associate"])),
            p("09/01/77", "12/01/82"),
        )
        .insert(tuple(["Merrie", "full"]), open("12/01/82"))
        .commit(d("12/15/82"))
        .expect("tx");
    s.begin()
        .insert(tuple(["Mike", "assistant"]), open("01/01/83"))
        .commit(d("01/10/83"))
        .expect("tx");
    s.begin()
        .set_validity(
            RowSelector::tuple(tuple(["Mike", "assistant"])),
            p("01/01/83", "03/01/84"),
        )
        .commit(d("02/25/84"))
        .expect("tx");
}

/// Builds the bitemporal `faculty` table of Figure 8.
pub fn figure_8() -> BitemporalTable {
    let mut t = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
    drive_figure_8(&mut t);
    t
}

/// Renders bitemporal rows in the paper's order and shape.
pub fn render_bitemporal_rows(rows: &[BitemporalRow]) -> String {
    let mut t = TextTable::new([
        "name",
        "rank",
        "valid (from)",
        "valid (to)",
        "tx (start)",
        "tx (end)",
    ])
    .with_double_bar_before(2);
    let mut rows = rows.to_vec();
    sort_like_paper(&mut rows, |row| {
        (
            row.tuple.clone(),
            (row.tx.start(), row.validity.period().start()),
        )
    });
    for row in rows {
        let per = row.validity.period();
        t.push_row([
            row.tuple.get(0).to_string(),
            row.tuple.get(1).to_string(),
            per.start().to_string(),
            per.end().to_string(),
            row.tx.start().to_string(),
            row.tx.end().to_string(),
        ]);
    }
    t.render()
}

/// Renders Figure 8.
pub fn render_figure_8() -> String {
    render_bitemporal_rows(figure_8().rows())
}

// ---------------------------------------------------------------------
// Figure 9 — a temporal event relation with user-defined time
// ---------------------------------------------------------------------

/// Builds the `promotion` temporal event relation of Figure 9.  The
/// `effective` attribute is user-defined time: an ordinary date column
/// the DBMS stores but never interprets.
pub fn figure_9() -> BitemporalTable {
    let schema = Schema::new(vec![
        Attribute::new("name", AttrType::Str),
        Attribute::new("rank", AttrType::Str),
        Attribute::new("effective", AttrType::Date),
    ])
    .expect("valid");
    let mut t = BitemporalTable::new(schema, TemporalSignature::Event);
    let ev = |name: &str, rank: &str, eff: &str| {
        Tuple::new(vec![
            Value::str(name),
            Value::str(rank),
            Value::Date(d(eff)),
        ])
    };
    t.begin()
        .insert(ev("Merrie", "associate", "09/01/77"), d("08/25/77"))
        .commit(d("08/25/77"))
        .expect("tx");
    t.begin()
        .insert(ev("Tom", "full", "12/05/82"), d("12/05/82"))
        .commit(d("12/01/82"))
        .expect("tx");
    t.begin()
        .remove(RowSelector::tuple(ev("Tom", "full", "12/05/82")))
        .insert(ev("Tom", "associate", "12/05/82"), d("12/07/82"))
        .commit(d("12/07/82"))
        .expect("tx");
    t.begin()
        .insert(ev("Merrie", "full", "12/01/82"), d("12/11/82"))
        .commit(d("12/15/82"))
        .expect("tx");
    t.begin()
        .insert(ev("Mike", "assistant", "01/01/83"), d("01/01/83"))
        .commit(d("01/10/83"))
        .expect("tx");
    t.begin()
        .insert(ev("Mike", "left", "03/01/84"), d("02/25/84"))
        .commit(d("02/25/84"))
        .expect("tx");
    t
}

/// Renders Figure 9.
pub fn render_figure_9() -> String {
    let rel = figure_9();
    let mut t = TextTable::new([
        "name",
        "rank",
        "effective date",
        "valid (at)",
        "tx (start)",
        "tx (end)",
    ])
    .with_double_bar_before(3);
    let mut rows = rel.rows().to_vec();
    sort_like_paper(&mut rows, |row| {
        (
            row.tuple.clone(),
            (row.tx.start(), row.validity.period().start()),
        )
    });
    for row in rows {
        let at = match row.validity {
            Validity::Event(c) => c.to_string(),
            Validity::Interval(p) => p.to_string(),
        };
        t.push_row([
            row.tuple.get(0).to_string(),
            row.tuple.get(1).to_string(),
            row.tuple.get(2).to_string(),
            at,
            row.tx.start().to_string(),
            row.tx.end().to_string(),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Figures 10–13 — the taxonomy tables
// ---------------------------------------------------------------------

/// Renders Figure 10 (the 2×2 classification), generated from
/// [`classify`].
pub fn render_figure_10() -> String {
    let mut t = TextTable::new(["", "No Rollback", "Rollback"]);
    t.push_row([
        "Static Queries".to_string(),
        classify(false, false).to_string(),
        classify(true, false).to_string(),
    ]);
    t.push_row([
        "Historical Queries".to_string(),
        classify(false, true).to_string(),
        classify(true, true).to_string(),
    ]);
    t.render()
}

/// Renders Figure 11 (database class × time kind incidence).
pub fn render_figure_11() -> String {
    let mut t = TextTable::new(["", "Transaction", "Valid", "User-defined"]);
    for class in DatabaseClass::ALL {
        t.push_row([
            class.to_string(),
            check(class.supports(TimeKind::Transaction)).to_string(),
            check(class.supports(TimeKind::Valid)).to_string(),
            check(class.supports(TimeKind::UserDefined)).to_string(),
        ]);
    }
    t.render()
}

/// Renders Figure 12 (attributes of the three kinds of time).
pub fn render_figure_12() -> String {
    let mut t = TextTable::new([
        "Terminology",
        "Append-Only",
        "Application Independent",
        "Representation vs. Reality",
    ]);
    for kind in TimeKind::ALL {
        t.push_row([
            kind.to_string(),
            if kind.append_only() { "Yes" } else { "No" }.to_string(),
            if kind.application_independent() {
                "Yes"
            } else {
                "No"
            }
            .to_string(),
            kind.models().to_string(),
        ]);
    }
    t.render()
}

/// Renders Figure 13 (time support in existing or proposed systems).
pub fn render_figure_13() -> String {
    let mut t = TextTable::new([
        "Reference",
        "System or Language",
        "Transaction Time",
        "Valid Time",
        "User-defined Time",
    ]);
    for s in fig13_rows() {
        t.push_row([
            s.reference.to_string(),
            s.system.to_string(),
            check(s.transaction).to_string(),
            check(s.valid).to_string(),
            check(s.user_defined).to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3_states_match_the_paper_drawing() {
        let r = figure_3();
        let states = r.states();
        assert_eq!(states.len(), 3);
        assert_eq!(states[0].1.len(), 3);
        assert_eq!(states[1].1.len(), 4);
        assert_eq!(states[2].1.len(), 4);
        assert!(!states[2].1.contains(&tuple(["t2"])));
        assert!(states[2].1.contains(&tuple(["t5"])));
        // Rollback still sees the deleted tuple in earlier states — via
        // the borrowed accessors, which don't clone the cube's state.
        assert!(r
            .rollback_ref(Chronon::new(2))
            .expect("two commits by then")
            .contains(&tuple(["t2"])));
        assert_eq!(r.state_at(1), r.rollback_ref(Chronon::new(2)));
        assert_eq!(r.current_ref(), r.state_at(2));
    }

    #[test]
    fn figure_5_differs_from_rollback_by_the_correction() {
        let states = figure_5();
        let last = &states.last().unwrap().1;
        assert_eq!(last.len(), 4, "t1, t2(closed), t4, t5 — t3 forgotten");
        assert!(!last.rows().iter().any(|r| r.tuple == tuple(["t3"])));
        // "There is no record kept of the errors that have been
        // corrected": nothing in the relation mentions t3.
    }

    #[test]
    fn figure_7_has_four_historical_states() {
        let r = figure_7();
        assert_eq!(r.states().len(), 4);
        assert_eq!(r.states()[3].1.len(), 4);
        // The erroneous tuple is still visible by rollback…
        assert!(r
            .rollback(Chronon::new(3))
            .rows()
            .iter()
            .any(|row| row.tuple == tuple(["t3"])));
        // …but absent from the current historical state.
        assert!(!r
            .current()
            .rows()
            .iter()
            .any(|row| row.tuple == tuple(["t3"])));
    }

    #[test]
    fn figure_8_current_state_is_figure_6() {
        assert_eq!(figure_8().current(), figure_6());
    }

    #[test]
    fn figure_9_has_the_six_paper_events() {
        let r = figure_9();
        assert_eq!(r.stored_tuples(), 6);
        let rendered = render_figure_9();
        for needle in [
            "Merrie",
            "associate",
            "09/01/77",
            "08/25/77",
            "12/11/82",
            "left",
            "03/01/84",
            "02/25/84",
            "∞",
        ] {
            assert!(
                rendered.contains(needle),
                "missing {needle} in:\n{rendered}"
            );
        }
        // Tom's erroneous `full` promotion record was superseded on
        // 12/07/82: its transaction period is closed.
        let closed_tom = r
            .rows()
            .iter()
            .find(|row| {
                row.tuple.get(1).as_str() == Some("full")
                    && row.tuple.get(0).as_str() == Some("Tom")
            })
            .unwrap();
        assert_eq!(closed_tom.tx, p("12/01/82", "12/07/82"));
    }

    #[test]
    fn rendered_tables_contain_paper_landmarks() {
        assert!(render_figure_1().contains("Data-Valid-Time-From/To"));
        assert!(render_figure_2().contains("Merrie | full"));
        assert!(render_figure_4().contains("12/15/82"));
        assert!(render_figure_6().contains("12/01/82"));
        assert!(render_figure_8().contains("∞"));
        assert!(render_figure_10().contains("Static Rollback"));
        assert!(render_figure_11().contains("✓"));
        assert!(render_figure_12().contains("Representation"));
        assert!(render_figure_13().contains("TQuel"));
    }
}
