//! E14 — the paper's §4.2 claim that snapshot-cube rollback storage is
//! "impractical, due to excessive duplication": per-transaction commit
//! cost of the cube vs the tuple-timestamped store as history grows.

use chronos_bench::workload;
use chronos_core::chronon::Chronon;
use chronos_core::prelude::*;
use chronos_core::relation::StaticOp;
use chronos_core::schema::faculty_schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn toggle_history(transactions: usize, entities: usize) -> Vec<(Chronon, StaticOp)> {
    let tuples = workload::entity_tuples(entities);
    let mut present = vec![false; entities];
    (0..transactions)
        .map(|i| {
            let idx = if i < entities { i } else { (i * 7) % entities };
            let op = if present[idx] {
                present[idx] = false;
                StaticOp::Delete(tuples[idx].clone())
            } else {
                present[idx] = true;
                StaticOp::Insert(tuples[idx].clone())
            };
            (Chronon::new(1000 + i as i64), op)
        })
        .collect()
}

fn bench_rollback_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_storage");
    for &n in &[64usize, 256, 1024] {
        let history = toggle_history(n, n / 2);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("snapshot_cube", n), &history, |b, h| {
            b.iter(|| {
                let mut cube = SnapshotRollback::new(faculty_schema());
                for (t, op) in h {
                    cube.commit(*t, std::slice::from_ref(op)).expect("valid");
                }
                cube.stored_tuples()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("tuple_timestamped", n),
            &history,
            |b, h| {
                b.iter(|| {
                    let mut ts = TimestampedRollback::new(faculty_schema());
                    for (t, op) in h {
                        ts.commit(*t, std::slice::from_ref(op)).expect("valid");
                    }
                    ts.stored_tuples()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rollback_storage);
criterion_main!(benches);
