//! E20 — coalescing cost vs fragmentation, and the step-function
//! aggregate (trend analysis) it feeds.

use chronos_algebra::aggregate::count_over_time;
use chronos_algebra::coalesce::coalesce;
use chronos_bench::workload::fragmented_relation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalesce");
    for &frags in &[1usize, 4, 16] {
        let rel = fragmented_relation(500, frags);
        group.throughput(Throughput::Elements(rel.len() as u64));
        group.bench_with_input(BenchmarkId::new("coalesce", frags), &rel, |b, r| {
            b.iter(|| coalesce(r).expect("coalesces").len())
        });
        group.bench_with_input(BenchmarkId::new("count_over_time", frags), &rel, |b, r| {
            b.iter(|| count_over_time(r).steps().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coalesce);
criterion_main!(benches);
