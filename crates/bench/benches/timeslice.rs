//! E17 — historical timeslice (τ_t, "more sophisticated operations"):
//! heap scan vs the valid-time interval tree, plus the bitemporal point
//! query composing both axes.
//!
//! ## Measurement asymmetry
//!
//! The scan and index variants do *not* do the same per-row work, and
//! the asymmetry cuts both ways:
//!
//! * `heap_scan` decodes **every** stored row (page-sequential reads,
//!   cheap per row) and then filters — cost ∝ history size;
//! * `valid_interval_tree` touches only rows whose valid period covers
//!   the probe, but pays a tree stab, a sort of the matching record
//!   ids, and a **random** heap access + decode per hit — cost ∝
//!   answer size with a higher per-row constant.
//!
//! With few hits the index wins outright; as the answer approaches the
//! whole table the scan's sequential advantage reasserts itself.  To
//! keep the comparison honest, `valid_tree_materialized` measures the
//! index probe *including* full row materialization into an owned
//! `Vec` (exactly what a query executor consumes) rather than just the
//! hit count, and `heap_scan_parallel` gives the scan side its best
//! shot: the morsel-driven parallel scan over heap pages.
//!
//! Every variant additionally declares its **rows produced** (computed
//! once, outside the timed loop) as the Criterion throughput, so the
//! report shows per-row cost alongside wall time: all timeslice
//! variants produce the same answer, which makes the per-produced-row
//! column expose exactly how much work each access path wastes per
//! useful row.

use chronos_bench::workload::{generate, WorkloadSpec};
use chronos_core::chronon::Chronon;
use chronos_core::prelude::*;
use chronos_storage::table::StoredBitemporalTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn build(n: usize) -> StoredBitemporalTable {
    let w = generate(&WorkloadSpec {
        entities: (n / 4).max(8),
        transactions: n,
        ops_per_tx: 2,
        correction_pct: 25,
        seed: 7,
    });
    let mut t = StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
    for tx in &w.transactions {
        t.try_commit(tx.tx_time, &tx.ops).expect("valid");
    }
    t
}

/// Same table with the parallel threshold dropped to zero, so every
/// scan takes the morsel-driven path regardless of size.
fn build_parallel(n: usize) -> StoredBitemporalTable {
    let mut t = build(n);
    t.set_parallel_threshold(0);
    t
}

fn bench_timeslice(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeslice");
    for &n in &[256usize, 1024, 4096] {
        let table = build(n);
        let probe = Chronon::new(940);
        let as_of = Chronon::new(1000 + (n as i64) / 4);
        // Rows produced per variant, computed once outside the timed
        // loops: the timeslice answer is identical across access paths,
        // so per-row throughput is directly comparable.
        let stored = table.stored_tuples() as u64;
        let produced = table.current_valid_at(probe).expect("ok").len() as u64;
        let bitemp_produced = table.valid_at_as_of(probe, as_of).expect("ok").len() as u64;
        eprintln!(
            "timeslice n={n}: stored={stored} rows, timeslice answer={produced} rows, \
             bitemporal answer={bitemp_produced} rows"
        );
        group.throughput(Throughput::Elements(produced.max(1)));
        group.bench_with_input(BenchmarkId::new("heap_scan", n), &table, |b, t| {
            b.iter(|| {
                let rows = t.scan_rows().expect("ok");
                rows.into_iter()
                    .filter(|r| r.is_current() && r.validity.valid_at(probe))
                    .count()
            })
        });
        let parallel = build_parallel(n);
        group.bench_with_input(
            BenchmarkId::new("heap_scan_parallel", n),
            &parallel,
            |b, t| {
                b.iter(|| {
                    let rows = t.scan_rows().expect("ok");
                    rows.into_iter()
                        .filter(|r| r.is_current() && r.validity.valid_at(probe))
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("valid_interval_tree", n),
            &table,
            |b, t| b.iter(|| t.current_valid_at(probe).expect("ok").len()),
        );
        // Index probe including row materialization: the hits are moved
        // into a fresh owned Vec (tuple clones included), matching what
        // an executor keeps, so the variant's cost is comparable to the
        // scan variants above rather than to a bare count.
        group.bench_with_input(
            BenchmarkId::new("valid_tree_materialized", n),
            &table,
            |b, t| {
                b.iter(|| {
                    let rows = t.current_valid_at(probe).expect("ok");
                    let materialized: Vec<(chronos_core::tuple::Tuple, Validity)> =
                        rows.into_iter().map(|r| (r.tuple, r.validity)).collect();
                    materialized.len()
                })
            },
        );
        group.throughput(Throughput::Elements(bitemp_produced.max(1)));
        group.bench_with_input(
            BenchmarkId::new("bitemporal_point_query", n),
            &table,
            |b, t| b.iter(|| t.valid_at_as_of(probe, as_of).expect("ok").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_timeslice);
criterion_main!(benches);
