//! E17 — historical timeslice (τ_t, "more sophisticated operations"):
//! heap scan vs the valid-time interval tree, plus the bitemporal point
//! query composing both axes.

use chronos_bench::workload::{generate, WorkloadSpec};
use chronos_core::chronon::Chronon;
use chronos_core::prelude::*;
use chronos_storage::table::StoredBitemporalTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build(n: usize) -> StoredBitemporalTable {
    let w = generate(&WorkloadSpec {
        entities: (n / 4).max(8),
        transactions: n,
        ops_per_tx: 2,
        correction_pct: 25,
        seed: 7,
    });
    let mut t = StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
    for tx in &w.transactions {
        t.try_commit(tx.tx_time, &tx.ops).expect("valid");
    }
    t
}

fn bench_timeslice(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeslice");
    for &n in &[256usize, 1024, 4096] {
        let table = build(n);
        let probe = Chronon::new(940);
        group.bench_with_input(BenchmarkId::new("heap_scan", n), &table, |b, t| {
            b.iter(|| {
                let rows = t.scan_rows().expect("ok");
                rows.into_iter()
                    .filter(|r| r.is_current() && r.validity.valid_at(probe))
                    .count()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("valid_interval_tree", n),
            &table,
            |b, t| b.iter(|| t.current_valid_at(probe).expect("ok").len()),
        );
        let as_of = Chronon::new(1000 + (n as i64) / 4);
        group.bench_with_input(
            BenchmarkId::new("bitemporal_point_query", n),
            &table,
            |b, t| b.iter(|| t.valid_at_as_of(probe, as_of).expect("ok").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_timeslice);
criterion_main!(benches);
