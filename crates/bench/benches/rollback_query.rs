//! E16 — the rollback operation (`as of t`): heap scan vs the
//! transaction-time interval tree, on the same stored table.

use chronos_bench::workload::{generate, WorkloadSpec};
use chronos_core::chronon::Chronon;
use chronos_core::prelude::*;
use chronos_storage::table::StoredBitemporalTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build(n: usize) -> StoredBitemporalTable {
    let w = generate(&WorkloadSpec {
        entities: (n / 4).max(8),
        transactions: n,
        ops_per_tx: 2,
        correction_pct: 25,
        seed: 7,
    });
    let mut t = StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
    for tx in &w.transactions {
        t.try_commit(tx.tx_time, &tx.ops).expect("valid");
    }
    t
}

fn bench_rollback_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_query");
    for &n in &[256usize, 1024, 4096] {
        let table = build(n);
        let probe = Chronon::new(1000 + (n as i64) / 8);
        group.bench_with_input(BenchmarkId::new("heap_scan", n), &table, |b, t| {
            b.iter(|| {
                let rows = t.scan_rows().expect("ok");
                rows.into_iter().filter(|r| r.tx.contains(probe)).count()
            })
        });
        group.bench_with_input(BenchmarkId::new("tx_interval_tree", n), &table, |b, t| {
            b.iter(|| t.rows_at(probe).expect("ok").len())
        });
        group.bench_with_input(
            BenchmarkId::new("materialize_historical_state", n),
            &table,
            |b, t| b.iter(|| t.try_rollback(probe).expect("ok").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rollback_query);
criterion_main!(benches);
