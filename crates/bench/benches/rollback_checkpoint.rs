//! E14b — checkpointed rollback reconstruction.
//!
//! The paper's two rollback encodings are the ends of a spectrum: the
//! snapshot cube answers `rollback(t)` in one lookup but stores every
//! unchanged tuple again per transaction; the tuple-timestamped store
//! keeps each version once but reconstructs a past state by touching
//! every row ever stored.  The checkpointed stores sit between them —
//! a commit log plus a materialized state every K commits, so rollback
//! binary-searches the checkpoints and replays at most K−1 deltas.
//!
//! Measured here at both layers:
//!
//! * core (`CheckpointedRollback` vs `TimestampedRollback`) with
//!   K ∈ {1, 16, 64, 256};
//! * storage (`StoredBitemporalTable::try_rollback_checkpointed` vs the
//!   transaction-time-index path).
//!
//! The experiments binary (`experiments`, table E14b) records the same
//! sweep with space figures; EXPERIMENTS.md holds the numbers.

use chronos_bench::workload::{self, WorkloadSpec};
use chronos_core::chronon::Chronon;
use chronos_core::prelude::*;
use chronos_core::relation::StaticOp;
use chronos_core::schema::faculty_schema;
use chronos_storage::table::StoredBitemporalTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn toggle_history(transactions: usize, entities: usize) -> Vec<(Chronon, StaticOp)> {
    let tuples = workload::entity_tuples(entities);
    let mut present = vec![false; entities];
    (0..transactions)
        .map(|i| {
            let idx = if i < entities { i } else { (i * 7) % entities };
            let op = if present[idx] {
                present[idx] = false;
                StaticOp::Delete(tuples[idx].clone())
            } else {
                present[idx] = true;
                StaticOp::Insert(tuples[idx].clone())
            };
            (Chronon::new(1000 + i as i64), op)
        })
        .collect()
}

fn bench_core_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_checkpoint/core");
    for &n in &[1024usize, 4096] {
        let history = toggle_history(n, n / 2);
        // Probe mid-history: the worst case for checkpoint replay is a
        // probe just below a checkpoint boundary; mid-history averages
        // over boundary positions across K values.
        let probe = Chronon::new(1000 + (n as i64) / 2);

        let mut ts = TimestampedRollback::new(faculty_schema());
        for (t, op) in &history {
            ts.commit(*t, std::slice::from_ref(op)).expect("valid");
        }
        group.bench_with_input(BenchmarkId::new("timestamped_scan", n), &ts, |b, s| {
            b.iter(|| s.rollback(probe).len())
        });

        for &k in &[1usize, 16, 64, 256] {
            let mut ck = CheckpointedRollback::with_interval(faculty_schema(), k);
            for (t, op) in &history {
                ck.commit(*t, std::slice::from_ref(op)).expect("valid");
            }
            assert_eq!(ck.rollback(probe), ts.rollback(probe));
            group.bench_with_input(
                BenchmarkId::new(format!("checkpointed_k{k}"), n),
                &ck,
                |b, s| b.iter(|| s.rollback(probe).len()),
            );
        }
    }
    group.finish();
}

fn bench_storage_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_checkpoint/storage");
    for &n in &[1024usize, 4096] {
        let w = workload::generate(&WorkloadSpec {
            entities: (n / 4).max(8),
            transactions: n,
            ops_per_tx: 2,
            correction_pct: 25,
            seed: 7,
        });
        let mut table =
            StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
        for tx in &w.transactions {
            table.try_commit(tx.tx_time, &tx.ops).expect("valid");
        }
        let probe = Chronon::new(1000 + (n as i64) / 2);
        assert_eq!(
            table.try_rollback_checkpointed(probe).expect("ok"),
            table.try_rollback_indexed(probe).expect("ok"),
        );
        group.bench_with_input(BenchmarkId::new("tx_index_stab", n), &table, |b, t| {
            b.iter(|| t.try_rollback_indexed(probe).expect("ok").len())
        });
        group.bench_with_input(BenchmarkId::new("checkpoint_replay", n), &table, |b, t| {
            b.iter(|| t.try_rollback_checkpointed(probe).expect("ok").len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_core_rollback, bench_storage_rollback);
criterion_main!(benches);
