//! E19 — end-to-end TQuel: parse + analyze + evaluate the paper's four
//! query shapes (static, rollback, historical, bitemporal) against a
//! populated temporal database.

use std::sync::Arc;

use chronos_core::calendar::Date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_db::Database;
use criterion::{criterion_group, criterion_main, Criterion};

fn build_db(profs: usize) -> Database {
    let clock = Arc::new(ManualClock::new(Chronon::new(900)));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    for i in 0..profs {
        clock.tick(1);
        db.session()
            .run(&format!(
                r#"append to faculty (name = "prof{i:05}", rank = "assistant")
                   valid from "{}" to forever"#,
                Date::from_chronon(Chronon::new(900 + i as i64))
            ))
            .expect("append");
    }
    for i in 0..profs / 2 {
        clock.tick(1);
        db.session()
            .run(&format!(
                r#"range of f is faculty
                   replace f (rank = "associate")
                   valid from "{}" to forever
                   where f.name = "prof{i:05}""#,
                Date::from_chronon(Chronon::new(2000 + i as i64))
            ))
            .expect("replace");
    }
    db
}

fn bench_tquel(c: &mut Criterion) {
    let mut db = build_db(200);
    let as_of = Date::from_chronon(Chronon::new(2050)).to_string();
    let when = Date::from_chronon(Chronon::new(1500)).to_string();

    let mut group = c.benchmark_group("tquel_queries");
    group.bench_function("parse_only", |b| {
        b.iter(|| {
            chronos_tquel::parse_program(
                r#"range of f1 is faculty
                   range of f2 is faculty
                   retrieve (f1.rank)
                   where f1.name = "prof00007" and f2.name = "prof00009"
                   when f1 overlap start of f2
                   as of "12/10/82""#,
            )
            .expect("parses")
        })
    });
    let static_q =
        r#"range of f is faculty retrieve (f.rank) where f.name = "prof00007""#.to_string();
    let rollback_q = format!(
        r#"range of f is faculty retrieve (f.rank) where f.name = "prof00007" as of "{as_of}""#
    );
    let historical_q = format!(
        r#"range of f is faculty retrieve (f.rank) where f.name = "prof00007" when f overlap "{when}""#
    );
    let bitemporal_q = format!(
        r#"range of f1 is faculty
           range of f2 is faculty
           retrieve (f1.rank)
           where f1.name = "prof00007" and f2.name = "prof00009"
           when f1 overlap start of f2
           as of "{as_of}""#
    );
    for (name, q) in [
        ("static_projection", &static_q),
        ("rollback_as_of", &rollback_q),
        ("historical_when", &historical_q),
        ("bitemporal_join", &bitemporal_q),
    ] {
        group.bench_function(name, |b| {
            let mut session = db.session();
            b.iter(|| session.query(q).expect("query").len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tquel);
criterion_main!(benches);
