//! E15 — the same duplication claim for temporal relations (§4.4):
//! building a temporal relation as a sequence of complete historical
//! states vs as a bitemporal tuple-timestamped table (reference and
//! storage-backed).

use chronos_bench::workload::{generate, WorkloadSpec};
use chronos_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_temporal_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal_storage");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let w = generate(&WorkloadSpec {
            entities: (n / 4).max(8),
            transactions: n,
            ops_per_tx: 2,
            correction_pct: 25,
            seed: 42,
        });
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("snapshot_states", n), &w, |b, w| {
            b.iter(|| {
                let mut cube = SnapshotTemporal::new(w.schema.clone(), TemporalSignature::Interval);
                for tx in &w.transactions {
                    cube.commit(tx.tx_time, &tx.ops).expect("valid");
                }
                cube.stored_tuples()
            })
        });
        group.bench_with_input(BenchmarkId::new("bitemporal_table", n), &w, |b, w| {
            b.iter(|| {
                let mut t = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
                for tx in &w.transactions {
                    t.commit(tx.tx_time, &tx.ops).expect("valid");
                }
                t.stored_tuples()
            })
        });
        group.bench_with_input(BenchmarkId::new("stored_table_indexed", n), &w, |b, w| {
            b.iter(|| {
                let mut t = chronos_storage::table::StoredBitemporalTable::in_memory(
                    w.schema.clone(),
                    TemporalSignature::Interval,
                );
                for tx in &w.transactions {
                    t.try_commit(tx.tx_time, &tx.ops).expect("valid");
                }
                t.stored_tuples()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_temporal_storage);
criterion_main!(benches);
