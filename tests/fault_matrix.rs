//! The crash matrix as a tier-1 test: every registered crash site runs
//! workload → crash → recover → verify (oracle equality, journal
//! consistency, `/readyz` 503 → 200, byte-identical paper figures), and
//! every site also unwinds gracefully in error mode.  The crash half
//! re-executes this test binary filtered down to [`crash_child_entry`],
//! which the armed fault kills with exit code 86.
//!
//! The matrix itself lives in `chronos_bench::fault_matrix`, shared
//! with `EXPERIMENTS_ONLY=faults cargo run --bin experiments`.

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use chronos_bench::fault_matrix as fm;
use chronos_core::calendar::date;
use chronos_core::clock::ManualClock;
use chronos_core::relation::temporal::TemporalStore as _;
use chronos_db::Database;
use chronos_obs::fault::{self, FaultPlan};
use chronos_storage::wal::Wal;
use proptest::prelude::*;

/// Serializes the tests that install process-global fault plans (or,
/// for the crash matrix, recover databases that would trip over an
/// armed plan) against each other.
fn fault_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Child entry point for the crash matrix.  In an ordinary test run
/// (no `CHRONOS_FAULT_CHILD` in the environment) this is a no-op; when
/// the matrix re-executes this binary with the fault armed, the
/// workload runs here and the armed site kills the process.
#[test]
fn crash_child_entry() {
    fm::maybe_run_child();
}

#[test]
fn every_crash_site_recovers_to_oracle_state() {
    let _g = fault_lock();
    let exe = std::env::current_exe().expect("own executable path");
    let args: Vec<String> = ["crash_child_entry", "--exact", "--nocapture"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let lines = fm::run_crash_matrix(&exe, &args).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(lines.len(), fault::CRASH_SITES.len());
}

#[test]
fn every_site_unwinds_gracefully() {
    let _g = fault_lock();
    let lines = fm::run_unwind_matrix().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(lines.len(), fault::CRASH_SITES.len());
}

/// The paper figures are pure in-memory computations: an armed (but
/// never-firing) fault plan must not perturb a single byte of them.
#[test]
fn figures_regenerate_byte_identically_under_armed_plan() {
    let baseline = fm::figures_digest();
    {
        let _g = fault_lock();
        fault::install(Arc::new(FaultPlan::error_at("wal.append.pre_frame", 1)));
        let armed = fm::figures_digest();
        fault::clear();
        assert_eq!(baseline, armed, "figures changed under an armed fault plan");
    }
}

/// Builds a durable database holding the matrix workload's commits
/// (checkpoint skipped, so every commit is a WAL record) and returns
/// the WAL length.
fn populated(dir: &Path) -> u64 {
    let clock = Arc::new(ManualClock::new(date("01/01/80").unwrap()));
    let mut db = Database::open(dir, Arc::clone(&clock) as _).expect("open fresh");
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("ddl");
    for (day, stmt) in [
        (
            "02/01/80",
            r#"append to faculty (name = "Merrie", rank = "associate")"#,
        ),
        (
            "03/01/80",
            r#"append to faculty (name = "Tom", rank = "assistant")"#,
        ),
        (
            "04/01/80",
            r#"range of f is faculty replace f (rank = "full") where f.name = "Merrie""#,
        ),
        (
            "05/01/80",
            r#"append to faculty (name = "Mike", rank = "assistant")"#,
        ),
        (
            "06/01/80",
            r#"range of f is faculty delete f where f.name = "Tom""#,
        ),
        (
            "07/01/80",
            r#"append to faculty (name = "Ann", rank = "lecturer")"#,
        ),
    ] {
        clock.advance_to(date(day).unwrap());
        db.session().run(stmt).expect("workload statement");
    }
    drop(db);
    std::fs::metadata(dir.join("wal"))
        .expect("wal exists")
        .len()
}

fn proptest_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chronos-faultpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Recovery after arbitrary WAL damage: open must always succeed, and
/// must recover exactly the intact record prefix the damaged bytes
/// still encode (per [`Wal::recover`]'s own scan).
fn assert_recovers_prefix(dir: &Path) {
    let expected = Wal::recover(&dir.join("wal"))
        .expect("recover scans any byte soup")
        .records
        .len();
    let db = Database::open(
        dir,
        Arc::new(ManualClock::new(date("01/01/81").unwrap())) as _,
    )
    .expect("open after damage must degrade gracefully, not fail");
    let commits = db
        .relation(fm::RELATION)
        .map(|r| r.as_temporal().transactions())
        .unwrap_or(0);
    assert_eq!(commits, expected, "recovered commits != intact WAL prefix");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating the WAL at any byte offset (a torn final write) must
    /// recover the longest intact record prefix.
    #[test]
    fn truncated_wal_recovers_intact_prefix(pct in 0u64..=100) {
        let dir = proptest_dir("cut");
        let len = populated(&dir);
        let cut = len * pct / 100;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("wal"))
            .expect("open wal");
        f.set_len(cut).expect("truncate");
        drop(f);
        assert_recovers_prefix(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte (bit-rot anywhere in the log) must
    /// recover the prefix before the damaged record.
    #[test]
    fn byte_flip_recovers_intact_prefix(pct in 0u64..100, bit in 0u32..8) {
        let dir = proptest_dir("flip");
        let len = populated(&dir);
        let pos = len.saturating_sub(1) * pct / 100;
        let path = dir.join("wal");
        let mut bytes = std::fs::read(&path).expect("read wal");
        bytes[pos as usize] ^= 1u8 << bit;
        std::fs::write(&path, &bytes).expect("write damaged wal");
        assert_recovers_prefix(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
