//! Differential properties of the acceleration layer: checkpointed
//! rollback reconstruction, morsel-driven parallel scans, and the
//! bitemporal query cache must all be *observationally invisible* —
//! byte-identical answers to the reference paths on every generated
//! history, at every probe time.

use chronos_bench::workload::{self, generate, WorkloadSpec};
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::prelude::*;
use chronos_core::relation::StaticOp;
use chronos_db::Database;
use chronos_storage::table::StoredBitemporalTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (2usize..30, 5usize..60, 1usize..4, 0u32..60, any::<u64>()).prop_map(
        |(entities, transactions, ops_per_tx, correction_pct, seed)| WorkloadSpec {
            entities,
            transactions,
            ops_per_tx,
            correction_pct,
            seed,
        },
    )
}

/// A random static-op history (for the core rollback stores): inserts,
/// deletes, and replaces kept valid against a shadow presence map.
fn static_history(seed: u64, entities: usize, transactions: usize) -> Vec<(Chronon, StaticOp)> {
    let tuples = workload::entity_tuples(entities);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut present = vec![false; entities];
    let mut out = Vec::with_capacity(transactions);
    for i in 0..transactions {
        let idx = rng.gen_range(0..entities);
        let op = if present[idx] {
            if rng.gen_bool(0.5) {
                present[idx] = false;
                StaticOp::Delete(tuples[idx].clone())
            } else {
                // Replace with itself is rejected by the static store;
                // swap to a neighbouring absent entity when possible.
                match (0..entities).find(|&j| !present[j]) {
                    Some(j) => {
                        present[idx] = false;
                        present[j] = true;
                        StaticOp::Replace {
                            old: tuples[idx].clone(),
                            new: tuples[j].clone(),
                        }
                    }
                    None => {
                        present[idx] = false;
                        StaticOp::Delete(tuples[idx].clone())
                    }
                }
            }
        } else {
            present[idx] = true;
            StaticOp::Insert(tuples[idx].clone())
        };
        out.push((Chronon::new(1000 + i as i64), op));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tentpole equivalence at the core layer: the snapshot cube, the
    /// tuple-timestamped store, and the checkpointed store agree on
    /// `rollback(t)` at, just before, and just after every commit time,
    /// for arbitrary checkpoint intervals.
    #[test]
    fn three_rollback_encodings_agree(
        seed in any::<u64>(),
        entities in 2usize..20,
        transactions in 1usize..80,
        interval in 1usize..20,
    ) {
        let history = static_history(seed, entities, transactions);
        let schema = chronos_core::schema::faculty_schema();
        let mut cube = SnapshotRollback::new(schema.clone());
        let mut ts = TimestampedRollback::new(schema.clone());
        let mut ck = CheckpointedRollback::with_interval(schema, interval);
        for (t, op) in &history {
            cube.commit(*t, std::slice::from_ref(op)).expect("cube");
            ts.commit(*t, std::slice::from_ref(op)).expect("ts");
            ck.commit(*t, std::slice::from_ref(op)).expect("ck");
        }
        prop_assert_eq!(cube.stored_tuples() > 0, transactions > 0);
        for (t, _) in &history {
            for probe in [t.pred(), *t, t.succ()] {
                let a = cube.rollback(probe);
                prop_assert_eq!(&a, &ts.rollback(probe), "timestamped diverges at {}", probe);
                prop_assert_eq!(&a, &ck.rollback(probe), "checkpointed diverges at {}", probe);
            }
        }
        // The borrowed accessors see the same states the trait clones.
        prop_assert_eq!(cube.current_ref(), ck.log_is_empty_marker());
    }
}

/// Helper extension so the property above reads naturally; the real
/// comparison target is `Option<&StaticRelation>`.
trait CurrentRefLike {
    fn log_is_empty_marker(&self) -> Option<&StaticRelation>;
}
impl CurrentRefLike for CheckpointedRollback {
    fn log_is_empty_marker(&self) -> Option<&StaticRelation> {
        if self.transactions() == 0 {
            None
        } else {
            Some(self.current_ref())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Storage layer: checkpointed reconstruction, the transaction-time
    /// index path, and the in-memory reference table all agree — and the
    /// dispatching `try_rollback` picks a correct path either way.
    #[test]
    fn stored_rollback_paths_agree(spec in arb_spec(), interval in 1usize..20) {
        let w = generate(&spec);
        let mut reference = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
        let mut stored =
            StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
        stored.set_checkpoint_interval(interval).expect("re-interval");
        let mut commits = Vec::new();
        for tx in &w.transactions {
            reference.commit(tx.tx_time, &tx.ops).expect("valid");
            stored.try_commit(tx.tx_time, &tx.ops).expect("valid");
            commits.push(tx.tx_time);
        }
        for &ct in commits.iter().step_by(2) {
            for probe in [ct.pred(), ct, ct.succ()] {
                let expect = reference.rollback(probe);
                prop_assert_eq!(
                    &expect,
                    &stored.try_rollback_checkpointed(probe).expect("ok"),
                    "checkpointed diverges at {}", probe
                );
                prop_assert_eq!(
                    &expect,
                    &stored.try_rollback_indexed(probe).expect("ok"),
                    "indexed diverges at {}", probe
                );
                prop_assert_eq!(&expect, &stored.rollback(probe));
            }
        }
    }

    /// Parallel scans return byte-identical output (same rows, same
    /// order) as the sequential paths, across full scans and every
    /// index-probe materialization.
    #[test]
    fn parallel_scans_are_invisible(spec in arb_spec()) {
        let w = generate(&spec);
        let mut seq =
            StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
        let mut par =
            StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
        par.set_parallel_threshold(0); // every scan takes the morsel path
        for tx in &w.transactions {
            seq.try_commit(tx.tx_time, &tx.ops).expect("valid");
            par.try_commit(tx.tx_time, &tx.ops).expect("valid");
        }
        prop_assert_eq!(seq.scan_rows_sequential().expect("ok"), par.scan_rows().expect("ok"));
        prop_assert_eq!(
            par.scan_rows_sequential().expect("ok"),
            par.scan_rows_parallel().expect("ok")
        );
        for probe in [Chronon::new(995), Chronon::new(1015), Chronon::new(1080)] {
            prop_assert_eq!(
                seq.rows_at(probe).expect("ok"),
                par.rows_at(probe).expect("ok")
            );
            prop_assert_eq!(
                seq.current_valid_at(probe).expect("ok"),
                par.current_valid_at(probe).expect("ok")
            );
            prop_assert_eq!(
                seq.valid_at_as_of(Chronon::new(990), probe).expect("ok"),
                par.valid_at_as_of(Chronon::new(990), probe).expect("ok")
            );
        }
        let window = Period::new(Chronon::new(1000), Chronon::new(1050)).expect("window");
        prop_assert_eq!(
            seq.rows_during(window).expect("ok"),
            par.rows_during(window).expect("ok")
        );
        prop_assert_eq!(
            seq.current_overlapping(window).expect("ok"),
            par.current_overlapping(window).expect("ok")
        );
    }

    /// The query cache is transparent: a database answering retrieves
    /// through the cache gives the same results as one with the cache
    /// disabled, across interleaved appends (which must invalidate) and
    /// repeated probes at current and historical coordinates.
    #[test]
    fn query_cache_is_transparent(
        seed in any::<u64>(),
        rounds in 1usize..5,
        appends_per_round in 1usize..6,
    ) {
        let mk = |capacity: usize| {
            let clock = std::sync::Arc::new(ManualClock::new(Chronon::new(900)));
            let mut db = Database::in_memory(clock.clone());
            db.set_cache_capacity(capacity);
            db.session()
                .run("create faculty (name = str, rank = str) as temporal")
                .expect("create");
            (clock, db)
        };
        let (clock_a, mut cached) = mk(8);
        let (clock_b, mut uncached) = mk(0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut appended = 0usize;
        for _ in 0..rounds {
            for _ in 0..appends_per_round {
                let stmt = format!(
                    r#"append to faculty (name = "prof{appended:05}", rank = "assistant")"#
                );
                clock_a.tick(1);
                clock_b.tick(1);
                cached.session().run(&stmt).expect("append cached");
                uncached.session().run(&stmt).expect("append uncached");
                appended += 1;
            }
            // Probe current state and a random historical coordinate,
            // twice each so the second cached probe is a genuine hit.
            let as_of = chronos_core::calendar::Date::from_chronon(
                Chronon::new(900 + rng.gen_range(0..(appended as i64 + 1))),
            );
            let queries = [
                "range of f is faculty retrieve (f.rank) sorted".to_string(),
                format!(r#"range of f is faculty retrieve (f.name) as of "{as_of}""#),
            ];
            for q in &queries {
                for _ in 0..2 {
                    let a = cached.session().query(q);
                    let b = uncached.session().query(q);
                    match (a, b) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(a.rows, b.rows, "diverged on {}", q),
                        (Err(_), Err(_)) => {}
                        (a, b) => prop_assert!(
                            false,
                            "one side errored on {}: cached={:?} uncached={:?}",
                            q, a.is_ok(), b.is_ok()
                        ),
                    }
                }
            }
        }
        // The cached database actually cached something.
        let stats = cached.engine_stats().cache;
        prop_assert!(stats.hits > 0, "no cache hits in {} rounds", rounds);
        prop_assert_eq!(uncached.engine_stats().cache.hits, 0);
    }
}
