//! TQuel end to end: every statement form, clause combination, and
//! diagnostic path, executed against a live database.

use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::relation::Validity;
use chronos_core::schema::TemporalSignature;
use chronos_core::taxonomy::DatabaseClass;
use chronos_db::{Database, DbError, ExecOutcome};
use chronos_tquel::printer::render;
use chronos_tquel::TquelError;

fn d(s: &str) -> Chronon {
    date(s).unwrap()
}

fn db() -> (Database, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    (db, clock)
}

#[test]
fn create_all_forms() {
    let (mut db, _c) = db();
    let mut s = db.session();
    s.run("create a (x = int, y = float, z = bool, w = date, v = str) as static")
        .unwrap();
    s.run("create b (x = str) as historical event").unwrap();
    s.run("create c (x = str) as temporal interval").unwrap();
    s.run("create dflt (x = str)").unwrap(); // defaults: temporal interval
    drop(s);
    assert_eq!(db.classify("dflt"), Some(DatabaseClass::Temporal));
    assert_eq!(db.classify("a"), Some(DatabaseClass::Static));
}

#[test]
fn append_defaults_valid_from_now() {
    let (mut db, clock) = db();
    clock.advance_to(d("06/15/80"));
    db.session()
        .run(r#"append to faculty (name = "Merrie", rank = "associate")"#)
        .unwrap();
    let res = db
        .session()
        .query(r#"range of f is faculty retrieve (f.rank) where f.name = "Merrie""#)
        .unwrap();
    assert_eq!(
        res.rows[0].validity,
        Some(Validity::Interval(
            chronos_core::period::Period::from_start(d("06/15/80"))
        )),
        "default validity starts at the commit time"
    );
}

#[test]
fn named_targets_and_multi_attribute_projection() {
    let (mut db, clock) = db();
    clock.advance_to(d("06/15/80"));
    db.session()
        .run(r#"append to faculty (name = "Merrie", rank = "associate")"#)
        .unwrap();
    let res = db
        .session()
        .query(r#"range of f is faculty retrieve (who = f.name, f.rank)"#)
        .unwrap();
    assert_eq!(res.schema.attributes()[0].name(), "who");
    assert_eq!(res.schema.attributes()[1].name(), "rank");
    assert_eq!(res.rows[0].tuple.to_string(), "(Merrie, associate)");
    // Duplicate output names rejected with a helpful message.
    let err = db
        .session()
        .query(r#"range of f is faculty retrieve (f.name, f.name)"#)
        .unwrap_err();
    assert!(err.to_string().contains("rename"), "{err}");
}

#[test]
fn when_clause_full_predicate_algebra() {
    let (mut db, clock) = db();
    for (day, stmt) in [
        (
            "02/01/80",
            r#"append to faculty (name = "A", rank = "r1") valid from "01/01/80" to "01/01/82""#,
        ),
        (
            "02/02/80",
            r#"append to faculty (name = "B", rank = "r2") valid from "01/01/81" to "01/01/83""#,
        ),
        (
            "02/03/80",
            r#"append to faculty (name = "C", rank = "r3") valid from "06/01/83" to forever"#,
        ),
    ] {
        clock.advance_to(d(day));
        db.session().run(stmt).unwrap();
    }
    let names = |db: &mut Database, q: &str| -> Vec<String> {
        let mut v = db.session().query(q).unwrap().column_strings(0);
        v.sort();
        v.dedup();
        v
    };
    // overlap with a constant.
    assert_eq!(
        names(
            &mut db,
            r#"range of f is faculty retrieve (f.name) when f overlap "06/01/81""#
        ),
        ["A", "B"]
    );
    // precede.
    assert_eq!(
        names(
            &mut db,
            r#"range of f1 is faculty range of f2 is faculty
               retrieve (f1.name)
               where f2.name = "C" when f1 precede f2"#
        ),
        ["A", "B"]
    );
    // equal + extend + not.
    assert_eq!(
        names(
            &mut db,
            r#"range of f1 is faculty range of f2 is faculty
               retrieve (f1.name)
               where f2.name = "A"
               when start of (f1 extend f2) equal start of f2 and not f1 equal f2"#
        ),
        ["B", "C"],
        "everything extending A's start without being A itself"
    );
    // or / parentheses.
    assert_eq!(
        names(
            &mut db,
            r#"range of f is faculty
               retrieve (f.name)
               when (f overlap "06/01/80" or f overlap "06/01/84")"#
        ),
        ["A", "C"]
    );
}

#[test]
fn valid_clause_controls_derived_timestamps() {
    let (mut db, clock) = db();
    clock.advance_to(d("02/01/80"));
    db.session()
        .run(r#"append to faculty (name = "A", rank = "r1") valid from "01/01/80" to "01/01/82""#)
        .unwrap();
    // Explicit interval.
    let res = db
        .session()
        .query(
            r#"range of f is faculty
               retrieve (f.name)
               valid from start of f to "06/01/80""#,
        )
        .unwrap();
    let per = match res.rows[0].validity.unwrap() {
        Validity::Interval(p) => p,
        other => panic!("{other:?}"),
    };
    assert_eq!(
        per.start(),
        chronos_core::timepoint::TimePoint::at(d("01/01/80"))
    );
    assert_eq!(
        per.end(),
        chronos_core::timepoint::TimePoint::at(d("06/01/80")),
        "'to' is an exclusive bound, as in the paper's (to) columns"
    );
    assert!(per.contains(d("05/31/80")));
    assert!(!per.contains(d("06/01/80")));
    // Event stamping via `valid at`.
    let res = db
        .session()
        .query(r#"range of f is faculty retrieve (f.name) valid at end of f"#)
        .unwrap();
    assert_eq!(res.signature, TemporalSignature::Event);
    assert_eq!(
        res.rows[0].validity,
        Some(Validity::Event(d("01/01/82").pred())),
        "end of a period is its last chronon"
    );
}

#[test]
fn as_of_through_windows() {
    let (mut db, clock) = db();
    clock.advance_to(d("02/01/80"));
    db.session()
        .run(r#"append to faculty (name = "A", rank = "r1")"#)
        .unwrap();
    clock.advance_to(d("02/01/81"));
    db.session()
        .run(r#"range of f is faculty delete f where f.name = "A""#)
        .unwrap();
    clock.advance_to(d("02/01/82"));
    db.session()
        .run(r#"append to faculty (name = "B", rank = "r2")"#)
        .unwrap();
    // Point probes.
    let count_as_of = |db: &mut Database, day: &str| {
        db.session()
            .query(&format!(
                r#"range of f is faculty retrieve (f.name) as of "{day}""#
            ))
            .unwrap()
            .len()
    };
    assert_eq!(count_as_of(&mut db, "06/01/80"), 1);
    assert_eq!(
        count_as_of(&mut db, "06/01/81"),
        1,
        "A's validity closed, version still stored"
    );
    assert_eq!(count_as_of(&mut db, "06/01/82"), 2);
    // Window sees every version current at some point inside it.
    let res = db
        .session()
        .query(
            r#"range of f is faculty
               retrieve (f.name) as of "01/01/80" through "12/31/82""#,
        )
        .unwrap();
    let mut names = res.column_strings(0);
    names.sort();
    names.dedup();
    assert_eq!(names, ["A", "B"]);
    // Backwards window rejected.
    let err = db
        .session()
        .query(r#"range of f is faculty retrieve (f.name) as of "12/31/82" through "01/01/80""#)
        .unwrap_err();
    assert!(matches!(err, DbError::Tquel(TquelError::Semantic(_))));
}

#[test]
fn destroy_then_query_fails_cleanly() {
    let (mut db, _c) = db();
    let out = db.session().run("destroy faculty").unwrap();
    assert!(matches!(out[0], ExecOutcome::Destroyed));
    let err = db.session().run("range of f is faculty").unwrap_err();
    assert!(matches!(err, DbError::Catalog(_)));
    assert!(db.session().run("destroy faculty").is_err());
}

#[test]
fn diagnostics_name_the_problem() {
    let (mut db, clock) = db();
    clock.advance_to(d("02/01/80"));
    db.session()
        .run(r#"append to faculty (name = "A", rank = "r1")"#)
        .unwrap();
    let mut expect_err = |q: &str, needle: &str| {
        let err = db.session().query(q).unwrap_err().to_string();
        assert!(
            err.contains(needle),
            "query {q:?}\n  error {err:?}\n  wanted {needle:?}"
        );
    };
    expect_err(
        r#"range of f is faculty retrieve (f.salary)"#,
        "no attribute",
    );
    expect_err(r#"retrieve (g.rank)"#, "not declared");
    expect_err(
        r#"range of f is faculty retrieve (f.rank) where f.name = 3"#,
        "type mismatch",
    );
    expect_err(
        r#"range of f is faculty retrieve (f.rank) as of "99/99/99""#,
        "invalid date",
    );
    expect_err(
        r#"range of f is faculty retrieve (f.rank) as of start of f"#,
        "constant date",
    );
}

#[test]
fn printer_renders_paper_style_tables() {
    let (mut db, clock) = db();
    clock.advance_to(d("02/01/80"));
    db.session()
        .run(r#"append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever"#)
        .unwrap();
    let res = db
        .session()
        .query(r#"range of f is faculty retrieve (f.name, f.rank)"#)
        .unwrap();
    let s = render(&res);
    assert!(s.contains("||"), "double bar before temporal domains:\n{s}");
    assert!(s.contains("09/01/77") && s.contains("∞"), "{s}");
    assert!(s.contains("tx (start)"), "{s}");
}

#[test]
fn empty_results_are_well_formed() {
    let (mut db, _c) = db();
    let res = db
        .session()
        .query(r#"range of f is faculty retrieve (f.rank) where f.name = "nobody""#)
        .unwrap();
    assert!(res.is_empty());
    assert_eq!(res.schema.arity(), 1);
    let s = render(&res);
    assert!(s.contains("rank"));
}

#[test]
fn retrieve_into_materializes_derived_relations() {
    // §4.4's closure property, executable: a bitemporal query result is
    // itself a temporal relation that further queries range over.
    let (mut db, clock) = db();
    for (day, stmt) in [
        (
            "02/01/80",
            r#"append to faculty (name = "Merrie", rank = "associate") valid from "01/01/80" to forever"#,
        ),
        (
            "02/02/80",
            r#"append to faculty (name = "Tom", rank = "assistant") valid from "01/15/80" to forever"#,
        ),
        (
            "06/01/82",
            r#"range of f is faculty
                        replace f (rank = "full") valid from "05/01/82" to forever
                        where f.name = "Merrie""#,
        ),
    ] {
        clock.advance_to(d(day));
        db.session().run(stmt).unwrap();
    }
    // Materialize Merrie's *complete* bitemporal history — every
    // version ever stored — via an `as of … through …` window.
    let out = db
        .session()
        .run(
            r#"range of f is faculty
               retrieve into merrie_hist (f.rank) where f.name = "Merrie"
               as of "01/01/80" through "01/01/85""#,
        )
        .unwrap();
    assert!(
        matches!(out[1], ExecOutcome::Materialized { rows: 3, .. }),
        "{:?}",
        out[1]
    );
    assert_eq!(db.classify("merrie_hist"), Some(DatabaseClass::Temporal));
    // Query the derived relation — including by rollback, since it kept
    // its transaction timestamps.
    let res = db
        .session()
        .query(
            r#"range of m is merrie_hist
               retrieve (m.rank) when m overlap "01/01/81" as of "01/01/81""#,
        )
        .unwrap();
    assert_eq!(res.column_strings(0), ["associate"]);
    let res = db
        .session()
        .query(r#"range of m is merrie_hist retrieve (m.rank) when m overlap "06/01/82""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["full"]);
    // A projection with an explicit valid clause keeps both timestamps
    // (the source is temporal), so it materializes as temporal too…
    db.session()
        .run(
            r#"range of f is faculty
               retrieve into full_profs (f.name) valid from start of f to forever
               where f.rank = "full""#,
        )
        .unwrap();
    assert_eq!(db.classify("full_profs"), Some(DatabaseClass::Temporal));
    // …and an aggregate materializes as a static one.
    db.session()
        .run(r#"range of f is faculty retrieve into counts (n = count(f.name))"#)
        .unwrap();
    assert_eq!(db.classify("counts"), Some(DatabaseClass::Static));
    let res = db
        .session()
        .query("range of c is counts retrieve (c.n)")
        .unwrap();
    assert_eq!(res.column_strings(0), ["3"]);
    // Name collisions are rejected.
    let err = db
        .session()
        .run(r#"range of f is faculty retrieve into counts (n = count(f.name))"#)
        .unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");
}

#[test]
fn aggregate_queries() {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create payroll (name = str, salary = int) as temporal")
        .unwrap();
    for (i, (name, sal)) in [("A", 3000i64), ("B", 4000), ("C", 5000), ("D", 4400)]
        .iter()
        .enumerate()
    {
        clock.advance_to(d("01/01/80") + 1 + i as i64);
        db.session()
            .run(&format!(
                r#"append to payroll (name = "{name}", salary = {sal})"#
            ))
            .unwrap();
    }
    // Count/sum/avg/min/max over the qualifying rows.
    let res = db
        .session()
        .query(
            r#"range of p is payroll
               retrieve (n = count(p.name), total = sum(p.salary),
                         mean = avg(p.salary), lo = min(p.salary), hi = max(p.salary))"#,
        )
        .unwrap();
    assert_eq!(res.kind, DatabaseClass::Static, "aggregates are static");
    assert_eq!(res.len(), 1);
    let row = &res.rows[0];
    assert_eq!(row.tuple.get(0).as_int(), Some(4));
    assert_eq!(row.tuple.get(1).as_int(), Some(16_400));
    assert_eq!(row.tuple.get(2).to_string(), "4100");
    assert_eq!(row.tuple.get(3).as_int(), Some(3000));
    assert_eq!(row.tuple.get(4).as_int(), Some(5000));
    assert!(row.validity.is_none() && row.tx.is_none());
    // Aggregates respect where and when clauses.
    let res = db
        .session()
        .query(
            r#"range of p is payroll
               retrieve (n = count(p.name))
               where p.salary >= 4000
               when p overlap "06/01/80""#,
        )
        .unwrap();
    assert_eq!(res.rows[0].tuple.get(0).as_int(), Some(3));
    // count over an empty set is 0; min over an empty set is undefined.
    let res = db
        .session()
        .query(r#"range of p is payroll retrieve (n = count(p.name)) where p.name = "zz""#)
        .unwrap();
    assert_eq!(res.rows[0].tuple.get(0).as_int(), Some(0));
    let res = db
        .session()
        .query(r#"range of p is payroll retrieve (lo = min(p.salary)) where p.name = "zz""#)
        .unwrap();
    assert!(res.is_empty());
    // Mixed plain/aggregate target lists rejected (no grouping).
    let err = db
        .session()
        .query(r#"range of p is payroll retrieve (p.name, count(p.name))"#)
        .unwrap_err();
    assert!(err.to_string().contains("grouping"), "{err}");
    // Non-numeric sums rejected at analysis.
    let err = db
        .session()
        .query(r#"range of p is payroll retrieve (sum(p.name))"#)
        .unwrap_err();
    assert!(err.to_string().contains("non-numeric"), "{err}");
}

#[test]
fn user_defined_time_compares_as_dates() {
    // §4.5: user-defined time needs only "an internal representation and
    // input and output functions" — but ordering comparisons on date
    // attributes must still work, with string literals coerced to dates.
    let clock = Arc::new(ManualClock::new(d("01/01/83")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create promotion (name = str, effective = date) as temporal event")
        .unwrap();
    for (i, (name, eff)) in [
        ("Merrie", "12/01/82"),
        ("Tom", "12/05/82"),
        ("Mike", "01/01/83"),
    ]
    .iter()
    .enumerate()
    {
        clock.advance_to(d("01/01/83") + 1 + i as i64);
        db.session()
            .run(&format!(
                r#"append to promotion (name = "{name}", effective = "{eff}")
                   valid at "{eff}""#
            ))
            .unwrap();
    }
    let names = |db: &mut Database, q: &str| -> Vec<String> {
        let mut v = db.session().query(q).unwrap().column_strings(0);
        v.sort();
        v
    };
    assert_eq!(
        names(
            &mut db,
            r#"range of p is promotion retrieve (p.name) where p.effective < "01/01/83""#
        ),
        ["Merrie", "Tom"]
    );
    assert_eq!(
        names(
            &mut db,
            r#"range of p is promotion retrieve (p.name) where p.effective >= "12/05/82""#
        ),
        ["Mike", "Tom"]
    );
    // The coerced literal works on either side of the comparison.
    assert_eq!(
        names(
            &mut db,
            r#"range of p is promotion retrieve (p.name) where "12/05/82" = p.effective"#
        ),
        ["Tom"]
    );
    // min/max aggregate over dates.
    let res = db
        .session()
        .query(r#"range of p is promotion retrieve (first = min(p.effective))"#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["12/01/82"]);
    // Invalid date literals against date attributes are rejected.
    assert!(db
        .session()
        .query(r#"range of p is promotion retrieve (p.name) where p.effective = "not a date""#)
        .is_err());
}

#[test]
fn comments_and_case_insensitive_keywords() {
    let (mut db, clock) = db();
    clock.advance_to(d("02/01/80"));
    db.session()
        .run(
            r#"
        # load one professor
        APPEND TO faculty (name = "A", rank = "r1")
        RANGE OF f IS faculty
        Retrieve (f.rank) WHERE f.name = "A"
    "#,
        )
        .unwrap();
}
