//! The operational surface end-to-end: the embedded HTTP exporter
//! (`/metrics`, `/stats`, `/slow`, `/healthz`, `/readyz`), the
//! slow-query log, and the structured `events.jsonl` journal.
//!
//! Every HTTP interaction here goes through [`chronos_obs::http_get`],
//! a raw-TCP GET — there is no HTTP client dependency to hide behind.

use std::path::PathBuf;
use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::relation::temporal::TemporalStore as _;
use chronos_db::{Database, ObsBootstrap};
use chronos_obs::{http_get, validate_json, validate_jsonl, SLOWLOG_DISABLED};

fn d(s: &str) -> Chronon {
    date(s).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronos-ops-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The paper's Figure 8 faculty history, built through TQuel.
fn figure8_db() -> (Database, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new(d("08/25/77")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    for (day, stmt) in [
        (
            "08/25/77",
            r#"append to faculty (name = "Merrie", rank = "associate")
               valid from "09/01/77" to forever"#,
        ),
        (
            "12/01/82",
            r#"append to faculty (name = "Tom", rank = "full")
               valid from "12/05/82" to forever"#,
        ),
        (
            "12/07/82",
            r#"range of f is faculty
               replace f (rank = "associate") valid from "12/05/82" to forever
               where f.name = "Tom""#,
        ),
        (
            "12/15/82",
            r#"range of f is faculty
               replace f (rank = "full") valid from "12/01/82" to forever
               where f.name = "Merrie""#,
        ),
    ] {
        clock.advance_to(d(day));
        db.session()
            .run(stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
    }
    (db, clock)
}

/// Pulls an unsigned JSON field out of one journal line (the journal is
/// flat, hand-rolled JSON — no serde in this workspace).
fn field_u64(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = line
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {line}"));
    line[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {line}"))
}

#[test]
fn exporter_serves_all_five_endpoints_with_live_counters() {
    let (mut db, _clock) = figure8_db();
    // A Figure 8 rollback query: "what did we record, as best known on
    // 12/10/82?"  It advances the tx-index and cache counters the
    // scrape below must carry.
    let res = db
        .session()
        .query(
            r#"range of f is faculty
               retrieve (f.rank) where f.name = "Tom" as of "12/10/82""#,
        )
        .expect("rollback query");
    assert_eq!(res.column_strings(0), ["associate"]);

    let server = db.serve_observability("127.0.0.1:0").expect("serve");
    let addr = server.addr().to_string();

    let (status, metrics) = http_get(&addr, "/metrics").expect("GET /metrics");
    assert_eq!(status, 200);
    // The just-executed query's counters are in the exposition.
    assert!(metrics.contains("chronos_commits 4"), "{metrics}");
    assert!(metrics.contains("chronos_index_probes"), "{metrics}");
    let probes = metrics
        .lines()
        .find(|l| l.starts_with("chronos_index_probes "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("index probe sample");
    assert!(probes > 0, "rollback query did not probe the tx index");

    let (status, stats) = http_get(&addr, "/stats").expect("GET /stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"commits\""), "{stats}");
    assert!(stats.contains("\"cache\""), "{stats}");

    let (status, slow) = http_get(&addr, "/slow").expect("GET /slow");
    assert_eq!(status, 200);
    assert!(slow.contains("\"threshold_ns\""), "{slow}");

    // An in-memory database is born recovered: both health endpoints
    // answer 200 immediately.
    let (status, body) = http_get(&addr, "/healthz").expect("GET /healthz");
    assert_eq!((status, body.trim()), (200, "ok"));
    let (status, ready) = http_get(&addr, "/readyz").expect("GET /readyz");
    assert_eq!(status, 200);
    assert!(ready.contains("\"ready\": true"), "{ready}");

    // Unknown paths 404 without killing the server.
    let (status, _) = http_get(&addr, "/nope").expect("GET /nope");
    assert_eq!(status, 404);
    let (status, _) = http_get(&addr, "/metrics").expect("GET again");
    assert_eq!(status, 200);

    server.shutdown();
}

/// The scrape path under fire: several readers hammer `/metrics` and
/// `/stats` while a writer session commits.  Every response must be
/// whole (parseable, counters present) and the commit counter seen by
/// any one reader must be monotone — a torn snapshot would violate
/// either.
#[test]
fn exporter_survives_concurrent_scrapes_during_writes() {
    const READERS: usize = 4;
    const SCRAPES: usize = 20;
    const COMMITS: usize = 40;

    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create log (name = str) as temporal")
        .expect("create");
    let server = db.serve_observability("127.0.0.1:0").expect("serve");
    let addr = server.addr().to_string();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut last_commits = 0u64;
                    for _ in 0..SCRAPES {
                        let (status, metrics) = http_get(&addr, "/metrics").expect("GET /metrics");
                        assert_eq!(status, 200);
                        let commits = metrics
                            .lines()
                            .find(|l| l.starts_with("chronos_commits "))
                            .and_then(|l| l.rsplit(' ').next())
                            .and_then(|v| v.parse::<u64>().ok())
                            .unwrap_or_else(|| panic!("torn exposition:\n{metrics}"));
                        assert!(
                            commits >= last_commits,
                            "commit counter went backwards: {last_commits} -> {commits}"
                        );
                        last_commits = commits;
                        let (status, stats) = http_get(&addr, "/stats").expect("GET /stats");
                        assert_eq!(status, 200);
                        validate_json(&stats).expect("torn /stats body");
                    }
                    last_commits
                })
            })
            .collect();
        // The writer keeps committing on this thread the whole time.
        for i in 0..COMMITS {
            clock.tick(1);
            db.session()
                .run(&format!(r#"append to log (name = "e{i:03}")"#))
                .expect("append");
        }
        for h in handles {
            let seen = h.join().expect("reader thread");
            assert!(seen <= COMMITS as u64);
        }
    });
    assert_eq!(db.engine_stats().metrics.commits, COMMITS as u64);
    server.shutdown();
}

#[test]
fn healthz_flips_from_503_to_200_across_recovery() {
    let dir = temp_dir("healthz");
    // Lay down history to recover.
    {
        let clock = Arc::new(ManualClock::new(d("01/01/80")));
        let mut db = Database::open(&dir, clock.clone()).expect("open");
        db.session()
            .run("create faculty (name = str, rank = str) as temporal")
            .expect("create");
        clock.advance_to(d("02/01/80"));
        db.session()
            .run(r#"append to faculty (name = "Merrie", rank = "associate")"#)
            .expect("append");
    }
    // The exporter comes up before the database: not ready.
    let obs = ObsBootstrap::new();
    let server = obs.serve("127.0.0.1:0").expect("serve");
    let addr = server.addr().to_string();
    let (status, body) = http_get(&addr, "/healthz").expect("GET /healthz");
    assert_eq!((status, body.trim()), (503, "starting"));
    let (status, ready) = http_get(&addr, "/readyz").expect("GET /readyz");
    assert_eq!(status, 503);
    assert!(ready.contains("\"ready\": false"), "{ready}");
    assert!(ready.contains("\"wal_recovered\": false"), "{ready}");

    // Recovery completes; the SAME server (no restart) answers 200.
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open_with_obs(&dir, clock, &obs).expect("recover");
    let (status, body) = http_get(&addr, "/healthz").expect("GET /healthz");
    assert_eq!((status, body.trim()), (200, "ok"));
    let (status, ready) = http_get(&addr, "/readyz").expect("GET /readyz");
    assert_eq!(status, 200);
    assert!(ready.contains("\"wal_recovered\": true"), "{ready}");
    assert!(db.health().ready());

    server.shutdown();
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn slow_log_names_the_rollback_access_path() {
    let clock = Arc::new(ManualClock::new(Chronon::new(1000)));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create r (name = str) as rollback")
        .expect("create");
    // Nine commits: with checkpoints every eight, a probe at the end
    // seeds from the checkpoint and replays the ninth alone.
    for i in 0..9 {
        clock.tick(1);
        db.session()
            .run(&format!(r#"append to r (name = "e{i:02}")"#))
            .expect("append");
    }
    db.set_slow_query_threshold_ns(0);
    let as_of = chronos_core::calendar::Date::from_chronon(db.now());
    db.session()
        .query(&format!(
            r#"range of x is r retrieve (x.name) as of "{as_of}""#
        ))
        .expect("rollback retrieve");

    let server = db.serve_observability("127.0.0.1:0").expect("serve");
    let (status, slow) = http_get(&server.addr().to_string(), "/slow").expect("GET /slow");
    assert_eq!(status, 200);
    // The captured profile names the access path the reconstruction
    // actually took — here the K=8 checkpoint seed.
    assert!(slow.contains("checkpoint hit"), "{slow}");
    assert!(slow.contains("retrieve"), "{slow}");
    server.shutdown();

    // A relation restored without its in-memory accelerator (fresh
    // relation probed below the first checkpoint) reports full replay;
    // spot-check the wording exists in the renderer's vocabulary.
    let entries = db.recorder().slowlog().entries();
    let last = entries.last().expect("captured");
    assert!(last.report.contains("checkpoint hit"), "{}", last.report);
    assert!(last.report.contains("K=8"), "{}", last.report);
}

#[test]
fn slow_log_threshold_zero_captures_every_statement_once_in_order() {
    let (mut db, clock) = figure8_db();
    db.set_slow_query_threshold_ns(0);
    let statements = [
        r#"append to faculty (name = "Jane", rank = "assistant")"#.to_string(),
        r#"range of f is faculty retrieve (f.rank) where f.name = "Tom""#.to_string(),
        r#"range of f is faculty retrieve (f.name) as of "12/10/82""#.to_string(),
    ];
    clock.tick(1);
    for stmt in &statements {
        db.session().run(stmt).expect("statement");
    }
    let entries = db.recorder().slowlog().entries();
    // `range of` and the retrieve are separate statements: 1 + 2 + 2.
    assert_eq!(entries.len(), 5, "{entries:#?}");
    assert_eq!(db.recorder().slowlog().admitted(), 5);
    for (i, e) in entries.iter().enumerate() {
        // Captured once each, in execution order…
        assert_eq!(e.seq, i as u64);
        // …with a non-empty span tree rooted at the statement span.
        assert!(
            e.report.contains("session/statement"),
            "entry {i} has no root span:\n{}",
            e.report
        );
        assert!(e.duration_ns > 0, "entry {i} has no duration");
    }
    // The capture order is the statement order.
    assert!(entries[0].statement.starts_with("append to faculty"));
    assert!(entries[1].statement.starts_with("range of"));
    assert!(entries[2].statement.starts_with("retrieve"));
    assert!(entries[3].statement.starts_with("range of"));
    assert!(entries[4].statement.starts_with("retrieve"));
}

#[test]
fn slow_log_disabled_threshold_captures_nothing() {
    let (mut db, _clock) = figure8_db();
    // The default threshold is disabled; make that explicit.
    assert_eq!(db.recorder().slowlog().threshold_ns(), SLOWLOG_DISABLED);
    db.session()
        .query(r#"range of f is faculty retrieve (f.rank) where f.name = "Tom""#)
        .expect("query");
    assert!(db.recorder().slowlog().is_empty());
    assert_eq!(db.recorder().slowlog().admitted(), 0);
    assert!(db
        .recorder()
        .slowlog()
        .to_json()
        .contains("\"entries\": []"));
}

#[test]
fn recovery_event_matches_the_replayed_table_state() {
    let dir = temp_dir("recovery-event");
    let commits = 3usize;
    {
        let clock = Arc::new(ManualClock::new(d("01/01/80")));
        let mut db = Database::open(&dir, clock.clone()).expect("open");
        db.session()
            .run("create faculty (name = str, rank = str) as temporal")
            .expect("create");
        for (i, day) in ["02/01/80", "03/01/80", "04/01/80"].iter().enumerate() {
            clock.advance_to(d(day));
            db.session()
                .run(&format!(
                    r#"append to faculty (name = "prof{i}", rank = "assistant")"#
                ))
                .expect("append");
        }
        assert_eq!(commits, 3);
    }
    // Flip a byte inside the SECOND frame's payload: recovery must stop
    // at the last good record and say so in the journal.
    let wal_path = dir.join("wal");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let total_len = bytes.len() as u64;
    let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let first_frame_end = 8 + first_len as u64;
    bytes[8 + first_len + 8 + 2] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();

    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open(&dir, clock).expect("reopen");
    let replayed_txns = db.relation("faculty").unwrap().as_temporal().transactions() as u64;
    assert_eq!(replayed_txns, 1, "only the valid prefix replays");

    let journal = std::fs::read_to_string(dir.join("events.jsonl")).expect("journal");
    validate_jsonl(&journal).expect("journal is well-formed JSONL");
    // The LAST recovery event is this reopen's (the journal appends
    // across database lifetimes).
    let recovery = journal
        .lines()
        .filter(|l| l.contains("\"event\": \"recovery\""))
        .next_back()
        .expect("a recovery event");
    assert_eq!(field_u64(recovery, "frames_replayed"), replayed_txns);
    assert_eq!(field_u64(recovery, "truncated_at"), first_frame_end);
    assert_eq!(
        field_u64(recovery, "torn_bytes"),
        total_len - first_frame_end,
        "everything after the corrupt frame is torn"
    );
    // The first (clean) open journaled its recovery too, with nothing
    // torn.
    let first = journal
        .lines()
        .find(|l| l.contains("\"event\": \"recovery\""))
        .expect("first recovery event");
    assert_eq!(field_u64(first, "torn_bytes"), 0);

    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_appends_and_checkpoints_are_journaled() {
    let dir = temp_dir("journal");
    {
        let clock = Arc::new(ManualClock::new(d("01/01/80")));
        let mut db = Database::open(&dir, clock.clone()).expect("open");
        db.session()
            .run("create faculty (name = str, rank = str) as temporal")
            .expect("create");
        clock.advance_to(d("02/01/80"));
        db.session()
            .run(r#"append to faculty (name = "Merrie", rank = "associate")"#)
            .expect("append");
        db.checkpoint().expect("checkpoint");
    }
    let journal = std::fs::read_to_string(dir.join("events.jsonl")).expect("journal");
    validate_jsonl(&journal).expect("well-formed");
    for needle in [
        "\"event\": \"recovery_start\"",
        "\"event\": \"recovery\"",
        "\"event\": \"wal_append\"",
        "\"event\": \"cache_epoch_bump\"",
        "\"event\": \"db_checkpoint_start\"",
        "\"event\": \"db_checkpoint_finish\"",
    ] {
        assert!(journal.contains(needle), "missing {needle} in:\n{journal}");
    }
    // Sequence numbers are strictly increasing down the file.
    let seqs: Vec<u64> = journal.lines().map(|l| field_u64(l, "seq")).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
