//! Observability end-to-end: `explain`/`profile` must name the access
//! path the engine *actually* took (not a guess re-derived from the
//! plan), and the metrics registry must lose nothing when the work is
//! spread across scan threads.

use std::sync::Arc;

use chronos_bench::workload::{generate, WorkloadSpec};
use chronos_core::calendar::date;
use chronos_core::clock::ManualClock;
use chronos_core::prelude::*;
use chronos_db::{Database, ExecOutcome};
use chronos_obs::Recorder;
use chronos_storage::table::StoredBitemporalTable;

fn step(db: &mut Database, clock: &Arc<ManualClock>, day: &str, stmt: &str) {
    clock.advance_to(date(day).expect("valid date"));
    db.session()
        .run(stmt)
        .unwrap_or_else(|e| panic!("{stmt}: {e}"));
}

/// The paper's Figure 8 faculty history, built through TQuel.
fn figure8_db() -> (Database, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new(date("08/25/77").expect("valid")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    step(
        &mut db,
        &clock,
        "08/25/77",
        r#"append to faculty (name = "Merrie", rank = "associate")
           valid from "09/01/77" to forever"#,
    );
    step(
        &mut db,
        &clock,
        "12/01/82",
        r#"append to faculty (name = "Tom", rank = "full")
           valid from "12/05/82" to forever"#,
    );
    step(
        &mut db,
        &clock,
        "12/07/82",
        r#"range of f is faculty
           replace f (rank = "associate") valid from "12/05/82" to forever
           where f.name = "Tom""#,
    );
    step(
        &mut db,
        &clock,
        "12/15/82",
        r#"range of f is faculty
           replace f (rank = "full") valid from "12/01/82" to forever
           where f.name = "Merrie""#,
    );
    (db, clock)
}

#[test]
fn profile_names_the_access_path_for_a_figure8_rollback_query() {
    let (mut db, _clock) = figure8_db();
    let before = db.engine_stats();
    let outcomes = db
        .session()
        .run(
            r#"range of f is faculty
               profile select (f.rank) where f.name = "Tom" as of "12/10/82""#,
        )
        .expect("profile runs");
    let report = match &outcomes[1] {
        ExecOutcome::Explained {
            profile: true,
            report,
        } => report.clone(),
        other => panic!("expected a profile report, got {other:?}"),
    };
    // The span tree covers every layer of the query.
    for needle in ["tquel/parse", "tquel/analyze", "tquel/exec", "db/scan"] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }
    // The rollback coordinate was answered by the transaction-time
    // index — the report names the path the storage layer took.
    assert!(
        report.contains("storage/asof") && report.contains("tx-index stab"),
        "access path not named in:\n{report}"
    );
    assert!(
        report.contains("counters:"),
        "counter line missing:\n{report}"
    );

    // The report's counters and the registry agree: the traced query
    // advanced the same global counters engine_stats() snapshots.
    let after = db.engine_stats();
    assert!(
        after.metrics.index_probes > before.metrics.index_probes,
        "profile reported a stab but index_probes did not advance"
    );
    assert!(after.metrics.cache_misses > before.metrics.cache_misses);

    // Both exposition formats carry the instrument.
    let prom = after.to_prometheus();
    assert!(prom.contains("chronos_index_probes"));
    assert!(prom.contains("chronos_commit_latency_ns"));
    assert!(after.to_json().contains("\"index_probes\""));
}

#[test]
fn explain_omits_timings_but_keeps_the_span_tree() {
    let (mut db, _clock) = figure8_db();
    let outcomes = db
        .session()
        .run(
            r#"range of f is faculty
               explain retrieve (f.rank) where f.name = "Merrie""#,
        )
        .expect("explain runs");
    match &outcomes[1] {
        ExecOutcome::Explained {
            profile: false,
            report,
        } => {
            assert!(
                report.contains("tquel/exec"),
                "span tree missing:\n{report}"
            );
            assert!(
                report.contains("storage/scan"),
                "span tree missing:\n{report}"
            );
        }
        other => panic!("expected an explain report, got {other:?}"),
    }
}

fn built_table(transactions: usize, seed: u64) -> StoredBitemporalTable {
    let w = generate(&WorkloadSpec {
        entities: (transactions / 4).max(8),
        transactions,
        ops_per_tx: 2,
        correction_pct: 25,
        seed,
    });
    let mut table = StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
    for tx in &w.transactions {
        table.try_commit(tx.tx_time, &tx.ops).expect("valid");
    }
    table
}

#[test]
fn rollback_spans_name_checkpoint_hit_vs_full_replay() {
    let w = generate(&WorkloadSpec {
        entities: 16,
        transactions: 64,
        ops_per_tx: 2,
        correction_pct: 25,
        seed: 11,
    });
    let mut table = StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
    let mut commit_times = Vec::new();
    for tx in &w.transactions {
        table.try_commit(tx.tx_time, &tx.ops).expect("valid");
        commit_times.push(tx.tx_time);
    }
    table.set_checkpoint_interval(8).expect("rebuild");
    let recorder = Arc::new(Recorder::new());
    table.set_recorder(Arc::clone(&recorder));

    // A late probe lands past several checkpoints: the span must say
    // so, and the replayed-transactions counter stays below K.
    let late = *commit_times.last().expect("nonempty");
    let before = recorder.snapshot();
    recorder.begin_trace();
    table.try_rollback_checkpointed(late).expect("rollback");
    let report = recorder.end_trace(&before).expect("capture active");
    let span = report
        .span_named("storage/rollback")
        .expect("span recorded");
    assert!(span.detail.contains("checkpoint hit"), "{}", span.detail);
    assert_eq!(report.delta.rollback_checkpoint_hits, 1);
    assert!(
        report.delta.rollback_txns_replayed < 8,
        "replayed {} ≥ K",
        report.delta.rollback_txns_replayed
    );

    // A probe before the first checkpoint replays from genesis.
    let early = commit_times[2];
    let before = recorder.snapshot();
    recorder.begin_trace();
    table.try_rollback_checkpointed(early).expect("rollback");
    let report = recorder.end_trace(&before).expect("capture active");
    let span = report
        .span_named("storage/rollback")
        .expect("span recorded");
    assert!(span.detail.contains("full replay"), "{}", span.detail);
    assert_eq!(report.delta.rollback_checkpoint_hits, 0);

    // The indexed alternative names its own path and probes the tree.
    let before = recorder.snapshot();
    recorder.begin_trace();
    table.try_rollback_indexed(late).expect("rollback");
    let report = recorder.end_trace(&before).expect("capture active");
    let span = report
        .span_named("storage/rollback")
        .expect("span recorded");
    assert!(span.detail.contains("tx-index stab"), "{}", span.detail);
    assert_eq!(report.delta.index_probes, 1);
}

#[test]
fn parallel_scan_aggregates_morsel_counters_without_loss() {
    let mut table = built_table(2048, 7);
    table.set_parallel_threshold(0);
    let recorder = Arc::new(Recorder::new());
    table.set_recorder(Arc::clone(&recorder));
    let pages = u64::from(table.heap_pages());
    assert!(pages > 1, "workload too small to span heap pages");

    let before = recorder.snapshot();
    let rows = table.scan_rows_parallel().expect("scan");
    let after = recorder.snapshot();
    let scanned = after.heap_rows_scanned - before.heap_rows_scanned;
    let morsels = after.heap_morsels_claimed - before.heap_morsels_claimed;

    // Per-worker counts aggregate to exactly the rows returned: no
    // increment is lost to the thread fan-out.
    assert_eq!(scanned, rows.len() as u64, "rows counted ≠ rows returned");
    if morsels > 0 {
        // Each heap page is one morsel and is claimed exactly once.
        assert_eq!(morsels, pages, "pages claimed ≠ pages present");
    }
    // (morsels == 0 only on a single-core host, where the parallel
    // entry point legitimately falls back to the sequential scan.)

    // And the parallel path stays observationally invisible.
    let sequential = table.scan_rows_sequential().expect("scan");
    assert_eq!(rows, sequential);
}

#[test]
fn engine_stats_tracks_commits_and_cache_traffic() {
    let (mut db, _clock) = figure8_db();
    let stats = db.engine_stats();
    // Four committing statements built Figure 8.
    assert_eq!(stats.metrics.commits, 4);
    assert_eq!(stats.metrics.commit_latency.samples, 4);
    // The replace path scans its relation; those scans went through the
    // query cache and were mirrored into the registry.
    assert_eq!(stats.metrics.cache_hits, stats.cache.hits);
    assert_eq!(stats.metrics.cache_misses, stats.cache.misses);
    assert_eq!(stats.metrics.cache_evictions, stats.cache.evictions);
    assert!(stats.cache.epoch_bumps >= 4);
}
