//! Concurrency: append-only transaction time makes past states immune
//! to concurrent writers — readers of a rolled-back state see a stable
//! snapshot no matter how many commits land meanwhile.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::period::Period;
use chronos_core::prelude::*;
use chronos_core::schema::faculty_schema;
use chronos_storage::table::StoredBitemporalTable;
use chronos_storage::txn::TxnManager;
use parking_lot::RwLock;

#[test]
fn txn_manager_is_race_free() {
    let clock = Arc::new(ManualClock::new(Chronon::new(0)));
    let mgr = Arc::new(TxnManager::new(clock));
    let mut all = Vec::new();
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mgr = Arc::clone(&mgr);
                s.spawn(move |_| (0..500).map(|_| mgr.next_commit_time()).collect::<Vec<_>>())
            })
            .collect();
        for h in handles {
            all.extend(h.join().unwrap());
        }
    })
    .unwrap();
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n, "commit times are unique under contention");
}

#[test]
fn readers_see_stable_past_states_during_writes() {
    let table = Arc::new(RwLock::new(StoredBitemporalTable::in_memory(
        faculty_schema(),
        TemporalSignature::Interval,
    )));
    // Seed some history.
    {
        let mut t = table.write();
        for i in 0..50i64 {
            t.try_commit(
                Chronon::new(i),
                &[HistoricalOp::insert(
                    tuple([format!("prof{i:03}").as_str(), "assistant"]),
                    Validity::Interval(Period::from_start(Chronon::new(i))),
                )],
            )
            .expect("valid");
        }
    }
    let frozen_at = Chronon::new(25);
    let expected = table.read().rollback(frozen_at);
    let stop = Arc::new(AtomicBool::new(false));

    crossbeam::scope(|s| {
        // Writer: keeps committing new facts and corrections.
        {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            s.spawn(move |_| {
                for i in 50..250i64 {
                    let mut t = table.write();
                    t.try_commit(
                        Chronon::new(i),
                        &[HistoricalOp::insert(
                            tuple([format!("prof{i:03}").as_str(), "associate"]),
                            Validity::Interval(Period::from_start(Chronon::new(i))),
                        )],
                    )
                    .expect("valid");
                }
                stop.store(true, Ordering::SeqCst);
            });
        }
        // Readers: repeatedly roll back to the frozen instant.
        for _ in 0..4 {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let expected = expected.clone();
            s.spawn(move |_| {
                let mut checks = 0u32;
                while !stop.load(Ordering::SeqCst) || checks == 0 {
                    let got = table.read().rollback(frozen_at);
                    assert_eq!(got, expected, "past state changed under a writer");
                    checks += 1;
                }
                assert!(checks > 0);
            });
        }
    })
    .unwrap();

    // After all writes, the past is still the past.
    assert_eq!(table.read().rollback(frozen_at), expected);
    assert_eq!(table.read().transactions(), 250);
}

#[test]
fn pinned_engine_reader_sees_stable_slice_across_commits() {
    let clock = Arc::new(ManualClock::new(Chronon::new(0)));
    let db = chronos_db::Database::in_memory(clock);
    let engine = chronos_db::Engine::start(db);
    {
        let mut s = engine.session();
        s.run("create faculty (name = str, rank = str) as temporal")
            .expect("create");
        for i in 0..10 {
            s.run(&format!(
                r#"append to faculty (name = "seed{i:02}", rank = "assistant")"#
            ))
            .expect("seed append");
        }
    }
    // Pin a reader at the 10-row snapshot, then hammer the engine with
    // concurrent writer sessions; the pinned slice must not move.
    let mut reader = engine.session();
    let query = "range of f is faculty retrieve (f.name, f.rank)";
    let baseline = reader.query(query).expect("baseline");
    assert_eq!(baseline.rows.len(), 10);
    let stop = Arc::new(AtomicBool::new(false));
    crossbeam::scope(|s| {
        for w in 0..4 {
            let engine = Arc::clone(&engine);
            s.spawn(move |_| {
                let mut session = engine.session();
                for j in 0..25 {
                    session
                        .run(&format!(
                            r#"append to faculty (name = "w{w}x{j:02}", rank = "associate")"#
                        ))
                        .expect("writer append");
                }
            });
        }
        {
            let stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut checks = 0u32;
                while !stop.load(Ordering::SeqCst) || checks == 0 {
                    let got = reader.query(query).expect("pinned query");
                    assert_eq!(got, baseline, "pinned snapshot changed under writers");
                    checks += 1;
                }
                // After the writers drain, refreshing the pin reveals
                // every committed row.
                reader.refresh();
                let fresh = reader.query(query).expect("refreshed query");
                assert_eq!(fresh.rows.len(), 110);
            });
        }
        // The writer spawns above joined implicitly at scope end would
        // leave the reader spinning; signal it once they finish.
        let engine2 = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        s.spawn(move |_| loop {
            let commits = engine2.stats().metrics.commits;
            if commits >= 110 {
                stop.store(true, Ordering::SeqCst);
                break;
            }
            std::thread::yield_now();
        });
    })
    .unwrap();
    engine.shutdown();
}

#[test]
fn engine_sessions_read_their_own_writes_monotonically() {
    let clock = Arc::new(ManualClock::new(Chronon::new(0)));
    let db = chronos_db::Database::in_memory(clock);
    let engine = chronos_db::Engine::start(db);
    engine
        .session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    let query = "range of f is faculty retrieve (f.name)";
    let mut a = engine.session();
    let mut b = engine.session();
    let pin_a0 = a.pin();
    a.run(r#"append to faculty (name = "Merrie", rank = "full")"#)
        .expect("a's append");
    // Read-your-writes: a's pin advanced with its own commit.
    assert!(a.pin() > pin_a0, "own commit must advance the pin");
    assert_eq!(a.query(query).expect("a reads").rows.len(), 1);
    // b is still pinned before a's commit and must not see it...
    assert_eq!(b.query(query).expect("b reads").rows.len(), 0);
    // ...until b commits itself (its pin jumps past a's commit time)...
    b.run(r#"append to faculty (name = "Tom", rank = "assistant")"#)
        .expect("b's append");
    assert_eq!(b.query(query).expect("b re-reads").rows.len(), 2);
    // ...or an explicit refresh catches a up to the durable watermark.
    let pin_a1 = a.pin();
    a.refresh();
    assert!(a.pin() >= pin_a1, "refresh never moves the pin backwards");
    assert_eq!(a.query(query).expect("a refreshed").rows.len(), 2);
    engine.shutdown();
}

#[test]
fn concurrent_bitemporal_point_queries_agree_with_serial() {
    let mut t = StoredBitemporalTable::in_memory(faculty_schema(), TemporalSignature::Interval);
    for i in 0..100i64 {
        t.try_commit(
            Chronon::new(i),
            &[HistoricalOp::insert(
                tuple([format!("p{i:03}").as_str(), "r"]),
                Validity::Interval(
                    Period::new(Chronon::new(i), Chronon::new(i + 40)).expect("fwd"),
                ),
            )],
        )
        .expect("valid");
    }
    let t = Arc::new(t);
    // Serial answers.
    let serial: Vec<usize> = (0..100i64)
        .map(|v| {
            t.valid_at_as_of(Chronon::new(v), Chronon::new(99))
                .unwrap()
                .len()
        })
        .collect();
    // The same queries from many threads (read-only sharing).
    crossbeam::scope(|s| {
        for chunk in 0..4 {
            let t = Arc::clone(&t);
            let serial = serial.clone();
            s.spawn(move |_| {
                for v in (chunk..100).step_by(4) {
                    let got = t
                        .valid_at_as_of(Chronon::new(v as i64), Chronon::new(99))
                        .unwrap()
                        .len();
                    assert_eq!(got, serial[v], "divergence at valid={v}");
                }
            });
        }
    })
    .unwrap();
}
