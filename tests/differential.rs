//! Cross-crate differential properties: the conceptual snapshot stores,
//! the in-memory tuple-timestamped stores, and the storage-backed,
//! index-accelerated table must be observationally equivalent on every
//! generated history; algebra transformations must preserve query
//! answers.

use chronos_algebra::coalesce::{coalesce, is_coalesced};
use chronos_algebra::temporal::{bitemporal_slice, rollback_temporal, timeslice};
use chronos_bench::workload::{generate, WorkloadSpec};
use chronos_core::chronon::Chronon;
use chronos_core::prelude::*;
use chronos_storage::table::StoredBitemporalTable;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (2usize..30, 5usize..60, 1usize..4, 0u32..60, any::<u64>()).prop_map(
        |(entities, transactions, ops_per_tx, correction_pct, seed)| WorkloadSpec {
            entities,
            transactions,
            ops_per_tx,
            correction_pct,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn three_temporal_implementations_agree(spec in arb_spec()) {
        let w = generate(&spec);
        let mut cube = SnapshotTemporal::new(w.schema.clone(), TemporalSignature::Interval);
        let mut table = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
        let mut stored = StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
        let mut commits = Vec::new();
        for tx in &w.transactions {
            cube.commit(tx.tx_time, &tx.ops).expect("valid on cube");
            table.commit(tx.tx_time, &tx.ops).expect("valid on table");
            stored.try_commit(tx.tx_time, &tx.ops).expect("valid on stored");
            commits.push(tx.tx_time);
        }
        prop_assert_eq!(cube.current(), table.current());
        prop_assert_eq!(table.current(), stored.current());
        prop_assert_eq!(table.stored_tuples(), stored.stored_tuples());
        for &ct in commits.iter().step_by(3) {
            for probe in [ct.pred(), ct, ct.succ()] {
                let a = cube.rollback(probe);
                prop_assert_eq!(&a, &table.rollback(probe), "table diverges at {}", probe);
                prop_assert_eq!(&a, &stored.rollback(probe), "stored diverges at {}", probe);
            }
        }
    }

    #[test]
    fn coalescing_preserves_every_timeslice(spec in arb_spec()) {
        let w = generate(&spec);
        let mut table = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
        for tx in &w.transactions {
            table.commit(tx.tx_time, &tx.ops).expect("valid");
        }
        let current = table.current();
        let merged = coalesce(&current).expect("coalesces");
        prop_assert!(is_coalesced(&merged));
        prop_assert!(merged.len() <= current.len());
        // Timeslices agree at period endpoints and in gaps.
        let mut probes: Vec<Chronon> = current
            .rows()
            .iter()
            .flat_map(|r| {
                let p = r.validity.period();
                [p.start().finite(), p.end().finite()]
            })
            .flatten()
            .collect();
        probes.push(Chronon::new(0));
        probes.push(Chronon::new(5000));
        for t in probes {
            for probe in [t.pred(), t, t.succ()] {
                prop_assert_eq!(
                    current.valid_at(probe),
                    merged.valid_at(probe),
                    "slice diverges at {}",
                    probe
                );
            }
        }
        // Idempotence.
        prop_assert_eq!(coalesce(&merged).expect("coalesces"), merged);
    }

    #[test]
    fn algebra_operators_match_store_queries(spec in arb_spec()) {
        let w = generate(&spec);
        let mut table = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
        let mut stored = StoredBitemporalTable::in_memory(w.schema.clone(), TemporalSignature::Interval);
        for tx in &w.transactions {
            table.commit(tx.tx_time, &tx.ops).expect("valid");
            stored.try_commit(tx.tx_time, &tx.ops).expect("valid");
        }
        let as_of = Chronon::new(1030);
        let valid = Chronon::new(990);
        // ρ then τ = the composed bitemporal slice…
        let composed = bitemporal_slice(&table, valid, as_of);
        let by_hand = timeslice(&rollback_temporal(&table, as_of), valid);
        prop_assert_eq!(&composed, &by_hand);
        // …and equals the stored table's indexed point query.
        let mut via_index: Vec<Tuple> = stored
            .valid_at_as_of(valid, as_of)
            .expect("ok")
            .into_iter()
            .map(|r| r.tuple)
            .collect();
        via_index.sort();
        via_index.dedup();
        let mut via_algebra: Vec<Tuple> = composed.iter().cloned().collect();
        via_algebra.sort();
        prop_assert_eq!(via_index, via_algebra);
    }

    #[test]
    fn stored_table_survives_wal_round_trip(spec in arb_spec()) {
        // Durability is replay: committing through a WAL and reopening
        // must reproduce the identical table.
        let w = generate(&spec);
        let dir = std::env::temp_dir().join(format!(
            "chronos-diff-{}-{}",
            std::process::id(),
            spec.seed
        ));
        let _ = std::fs::remove_file(&dir);
        {
            let mut t = StoredBitemporalTable::open_durable(
                &dir,
                1,
                w.schema.clone(),
                TemporalSignature::Interval,
            )
            .expect("open");
            for tx in &w.transactions {
                t.try_commit(tx.tx_time, &tx.ops).expect("valid");
            }
        }
        let reopened = StoredBitemporalTable::open_durable(
            &dir,
            1,
            w.schema.clone(),
            TemporalSignature::Interval,
        )
        .expect("reopen");
        let mut reference = BitemporalTable::new(w.schema.clone(), TemporalSignature::Interval);
        for tx in &w.transactions {
            reference.commit(tx.tx_time, &tx.ops).expect("valid");
        }
        prop_assert_eq!(reopened.current(), reference.current());
        prop_assert_eq!(reopened.stored_tuples(), reference.stored_tuples());
        prop_assert_eq!(reopened.transactions(), reference.transactions());
        let _ = std::fs::remove_file(&dir);
    }
}
