//! Asserts every figure of the paper, regenerated from live objects.
//!
//! Each test checks the *content* (rows, timestamps, classifications)
//! rather than rendered strings, then spot-checks the rendering used by
//! the `figures` binary.

use chronos_bench::figures::*;
use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::prelude::*;
use chronos_core::taxonomy::literature::{figure_1, figure_13, AppendOnly};
use chronos_core::taxonomy::{classify, DatabaseClass, Modeled, TimeKind};

fn per(from: &str, to: Option<&str>) -> Period {
    match to {
        Some(to) => Period::new(d(from), d(to)).unwrap(),
        None => Period::from_start(d(from)),
    }
}

#[test]
fn figure_1_rows_and_notes() {
    let rows = figure_1();
    assert_eq!(rows.len(), 13);
    // Ben-Zvi contributes both Registration (append-only representation)
    // and Effective (modifiable reality).
    let benzvi: Vec<_> = rows
        .iter()
        .filter(|r| r.reference.contains("Ben-Zvi"))
        .collect();
    assert_eq!(benzvi.len(), 2);
    assert_eq!(benzvi[0].append_only, AppendOnly::Yes);
    assert_eq!(benzvi[1].append_only, AppendOnly::No);
    // The footnoted cells.
    assert!(rows
        .iter()
        .any(|r| r.terminology == "Physical" && r.append_only == AppendOnly::CorrectionsOnly));
    assert!(rows
        .iter()
        .any(|r| r.terminology == "Data-Valid-Time-From/To"
            && r.append_only == AppendOnly::FutureChangesOnly));
    assert!(rows
        .iter()
        .any(|r| r.terminology == "Event" && r.unsupported));
    assert!(rows
        .iter()
        .any(|r| r.terminology == "Logical" && r.unsupported));
}

#[test]
fn figure_2_and_static_query() {
    let r = figure_2();
    assert_eq!(r.len(), 2);
    assert!(r.contains(&tuple(["Merrie", "full"])));
    assert!(r.contains(&tuple(["Tom", "associate"])));
    // retrieve (f.rank) where f.name = "Merrie" => full
    let sel =
        chronos_algebra::ops::select(&r, &chronos_algebra::expr::Predicate::attr_eq(0, "Merrie"))
            .unwrap();
    let ranks = chronos_algebra::ops::project(&sel, &[1]).unwrap();
    assert_eq!(ranks.sorted(), vec![tuple(["full"])]);
}

#[test]
fn figure_3_cube_of_static_states() {
    let r = figure_3();
    // Three transactions → three states of sizes 3, 4, 4.
    let sizes: Vec<usize> = r.states().iter().map(|(_, s)| s.len()).collect();
    assert_eq!(sizes, vec![3, 4, 4]);
    // The deletion in tx 3 removed a tuple entered in tx 1.
    assert!(r.states()[0].1.contains(&tuple(["t2"])));
    assert!(!r.states()[2].1.contains(&tuple(["t2"])));
    // Cube storage duplicates: 11 stored tuples for 5 distinct.
    assert_eq!(r.stored_tuples(), 11);
}

#[test]
fn figure_4_exact_rows_and_rollback() {
    let r = figure_4();
    let rows = r.rows();
    assert_eq!(rows.len(), 4);
    let expect = [
        ("Merrie", "associate", "08/25/77", Some("12/15/82")),
        ("Merrie", "full", "12/15/82", None),
        ("Tom", "associate", "12/07/82", None),
        ("Mike", "assistant", "01/10/83", Some("02/25/84")),
    ];
    for (name, rank, start, end) in expect {
        let tx = match end {
            Some(e) => Period::new(d(start), d(e)).unwrap(),
            None => Period::from_start(d(start)),
        };
        assert!(
            rows.iter()
                .any(|row| row.tuple == tuple([name, rank]) && row.tx == tx),
            "missing Figure 4 row {name} {rank}"
        );
    }
    // as of "12/10/82" => associate.
    let s = r.rollback(d("12/10/82"));
    assert!(s.contains(&tuple(["Merrie", "associate"])));
    assert!(!s.contains(&tuple(["Merrie", "full"])));
}

#[test]
fn figure_5_corrections_leave_no_trace() {
    let states = figure_5();
    assert_eq!(states.len(), 4);
    let final_state = &states.last().unwrap().1;
    // t3 was removed as erroneous: unlike the rollback relation, no
    // record remains.
    assert!(!final_state.rows().iter().any(|r| r.tuple == tuple(["t3"])));
    // t2's validity was corrected in place.
    let t2 = final_state
        .rows()
        .iter()
        .find(|r| r.tuple == tuple(["t2"]))
        .unwrap();
    assert_eq!(
        t2.validity.period(),
        Period::new(Chronon::new(1), Chronon::new(3)).unwrap()
    );
}

#[test]
fn figure_6_exact_rows_and_timeslices() {
    let r = figure_6();
    assert_eq!(r.len(), 4);
    let expect = [
        ("Merrie", "associate", "09/01/77", Some("12/01/82")),
        ("Merrie", "full", "12/01/82", None),
        ("Tom", "associate", "12/05/82", None),
        ("Mike", "assistant", "01/01/83", Some("03/01/84")),
    ];
    for (name, rank, from, to) in expect {
        assert!(
            r.rows()
                .iter()
                .any(|row| row.tuple == tuple([name, rank])
                    && row.validity.period() == per(from, to)),
            "missing Figure 6 row {name} {rank}"
        );
    }
    // Historical query: Merrie's rank 2 years before the paper.
    assert!(r
        .valid_at(d("12/01/80"))
        .contains(&tuple(["Merrie", "associate"])));
}

#[test]
fn figure_7_append_only_historical_states() {
    let r = figure_7();
    let sizes: Vec<usize> = r.states().iter().map(|(_, s)| s.len()).collect();
    assert_eq!(sizes, vec![3, 4, 5, 4]);
    // Rollback to state 3 still shows the later-retracted tuple.
    assert!(r
        .rollback(Chronon::new(3))
        .rows()
        .iter()
        .any(|row| row.tuple == tuple(["t3"])));
}

#[test]
fn figure_8_exact_seven_rows() {
    let r = figure_8();
    let rows = r.rows();
    assert_eq!(rows.len(), 7);
    let expect = [
        (
            "Merrie",
            "associate",
            "09/01/77",
            None,
            "08/25/77",
            Some("12/15/82"),
        ),
        (
            "Merrie",
            "associate",
            "09/01/77",
            Some("12/01/82"),
            "12/15/82",
            None,
        ),
        ("Merrie", "full", "12/01/82", None, "12/15/82", None),
        (
            "Tom",
            "full",
            "12/05/82",
            None,
            "12/01/82",
            Some("12/07/82"),
        ),
        ("Tom", "associate", "12/05/82", None, "12/07/82", None),
        (
            "Mike",
            "assistant",
            "01/01/83",
            None,
            "01/10/83",
            Some("02/25/84"),
        ),
        (
            "Mike",
            "assistant",
            "01/01/83",
            Some("03/01/84"),
            "02/25/84",
            None,
        ),
    ];
    for (name, rank, vf, vt, ts, te) in expect {
        let validity = Validity::Interval(per(vf, vt));
        let tx = per(ts, te);
        assert!(
            rows.iter().any(|row| row.tuple == tuple([name, rank])
                && row.validity == validity
                && row.tx == tx),
            "missing Figure 8 row {name} {rank} valid {validity} tx {tx}"
        );
    }
}

#[test]
fn figure_9_event_relation_rows() {
    let r = figure_9();
    assert_eq!(r.stored_tuples(), 6);
    // Merrie's retroactive promotion: effective 12/01/82, signed
    // (valid) 12/11/82, recorded 12/15/82 — "signed four days before it
    // was recorded".
    let merrie_full = r
        .rows()
        .iter()
        .find(|row| {
            row.tuple.get(0).as_str() == Some("Merrie") && row.tuple.get(1).as_str() == Some("full")
        })
        .unwrap();
    assert_eq!(merrie_full.tuple.get(2).as_date(), Some(d("12/01/82")));
    assert_eq!(merrie_full.validity, Validity::Event(d("12/11/82")));
    assert_eq!(merrie_full.tx, Period::from_start(d("12/15/82")));
}

#[test]
fn figures_10_11_12_from_the_taxonomy() {
    // Figure 10.
    assert_eq!(classify(false, false), DatabaseClass::Static);
    assert_eq!(classify(true, false), DatabaseClass::StaticRollback);
    assert_eq!(classify(false, true), DatabaseClass::Historical);
    assert_eq!(classify(true, true), DatabaseClass::Temporal);
    // Figure 11.
    assert!(DatabaseClass::Temporal.supports(TimeKind::UserDefined));
    assert!(!DatabaseClass::StaticRollback.supports(TimeKind::Valid));
    assert!(!DatabaseClass::Historical.supports(TimeKind::Transaction));
    // Figure 12.
    assert!(TimeKind::Transaction.append_only());
    assert_eq!(TimeKind::Transaction.models(), Modeled::Representation);
    assert!(!TimeKind::UserDefined.application_independent());
    assert_eq!(TimeKind::Valid.models(), Modeled::Reality);
}

#[test]
fn figure_13_classification_of_systems() {
    let systems = figure_13();
    assert_eq!(systems.len(), 17);
    let class_of = |name: &str| {
        systems
            .iter()
            .find(|s| s.system == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .database_class()
    };
    assert_eq!(class_of("TRM"), DatabaseClass::Temporal);
    assert_eq!(class_of("TQuel"), DatabaseClass::Temporal);
    assert_eq!(class_of("GemStone"), DatabaseClass::StaticRollback);
    assert_eq!(class_of("LEGOL 2.0"), DatabaseClass::Historical);
    assert_eq!(class_of("QBE"), DatabaseClass::Static);
    // Paper §5: "fifteen years of research has focused on … static
    // databases" — only two surveyed systems reach temporal.
    let temporal = systems
        .iter()
        .filter(|s| s.database_class() == DatabaseClass::Temporal)
        .count();
    assert_eq!(temporal, 2);
}

#[test]
fn renderings_are_stable_tables() {
    // Every renderer produces a non-empty aligned table containing its
    // figure's landmarks (full content is checked above).
    for (name, s, needle) in [
        ("fig1", render_figure_1(), "Registration"),
        ("fig2", render_figure_2(), "Merrie"),
        ("fig3", render_figure_3(), "after transaction 3"),
        ("fig4", render_figure_4(), "12/15/82"),
        ("fig5", render_figure_5(), "after modification 4"),
        ("fig6", render_figure_6(), "12/05/82"),
        (
            "fig7",
            render_figure_7(),
            "historical state after transaction 4",
        ),
        ("fig8", render_figure_8(), "∞"),
        ("fig9", render_figure_9(), "effective date"),
        ("fig10", render_figure_10(), "Temporal"),
        ("fig11", render_figure_11(), "✓"),
        ("fig12", render_figure_12(), "Append-Only"),
        ("fig13", render_figure_13(), "SWALLOW"),
    ] {
        assert!(s.contains(needle), "{name} missing {needle:?}:\n{s}");
        assert!(s.lines().count() >= 2, "{name} too short");
    }
}

#[test]
fn figure_8_rendering_is_byte_exact() {
    // The full rendered table, pinned: any change to the calendar, the
    // period printer, the sort, or the table layout shows up here.
    let expected = "\
name   | rank      || valid (from) | valid (to) | tx (start) | tx (end)
-------+-----------++--------------+------------+------------+---------
Merrie | associate || 09/01/77     | ∞          | 08/25/77   | 12/15/82
Merrie | associate || 09/01/77     | 12/01/82   | 12/15/82   | ∞
Merrie | full      || 12/01/82     | ∞          | 12/15/82   | ∞
Tom    | full      || 12/05/82     | ∞          | 12/01/82   | 12/07/82
Tom    | associate || 12/05/82     | ∞          | 12/07/82   | ∞
Mike   | assistant || 01/01/83     | ∞          | 01/10/83   | 02/25/84
Mike   | assistant || 01/01/83     | 03/01/84   | 02/25/84   | ∞
";
    assert_eq!(render_figure_8(), expected);
}

#[test]
fn figure_4_rendering_is_byte_exact() {
    let expected = "\
name   | rank      || tx (start) | tx (end)
-------+-----------++------------+---------
Merrie | associate || 08/25/77   | 12/15/82
Merrie | full      || 12/15/82   | ∞
Tom    | associate || 12/07/82   | ∞
Mike   | assistant || 01/10/83   | 02/25/84
";
    assert_eq!(render_figure_4(), expected);
}

#[test]
fn figure_8_row_order_matches_paper_rendering() {
    let rendered = render_figure_8();
    let lines: Vec<&str> = rendered.lines().collect();
    // Paper order: Merrie ×3, Tom ×2, Mike ×2.
    let names: Vec<&str> = lines[2..]
        .iter()
        .map(|l| l.split('|').next().unwrap().trim())
        .collect();
    assert_eq!(
        names,
        ["Merrie", "Merrie", "Merrie", "Tom", "Tom", "Mike", "Mike"]
    );
}
