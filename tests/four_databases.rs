//! The four database classes, exercised side by side: capabilities,
//! update disciplines, and the exact semantic differences the paper
//! describes between them.

use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::taxonomy::DatabaseClass;
use chronos_db::{Database, ExecOutcome};

fn d(s: &str) -> Chronon {
    date(s).unwrap()
}

fn db_with_all_classes() -> (Database, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run(
            r#"
        create s_rel (name = str, rank = str) as static
        create r_rel (name = str, rank = str) as rollback
        create h_rel (name = str, rank = str) as historical
        create t_rel (name = str, rank = str) as temporal
    "#,
        )
        .unwrap();
    (db, clock)
}

/// Applies the same story to each class: hire Merrie as associate, then
/// promote her; ask what each class can still tell us.
fn run_story(db: &mut Database, clock: &Arc<ManualClock>, rel: &str) {
    clock.advance_to(d("01/05/80"));
    db.session()
        .run(&format!(
            r#"append to {rel} (name = "Merrie", rank = "associate")"#
        ))
        .unwrap();
    clock.advance_to(d("06/01/82"));
    db.session()
        .run(&format!(
            r#"range of v is {rel}
               replace v (rank = "full") where v.name = "Merrie""#
        ))
        .unwrap();
}

#[test]
fn static_database_forgets_everything() {
    let (mut db, clock) = db_with_all_classes();
    run_story(&mut db, &clock, "s_rel");
    assert_eq!(db.classify("s_rel"), Some(DatabaseClass::Static));
    // Only the snapshot survives.
    let res = db
        .session()
        .query(r#"range of v is s_rel retrieve (v.rank)"#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["full"]);
    // Neither rollback nor historical queries are possible.
    assert!(db
        .session()
        .query(r#"range of v is s_rel retrieve (v.rank) as of "01/01/81""#)
        .is_err());
    assert!(db
        .session()
        .query(r#"range of v is s_rel retrieve (v.rank) when v overlap "01/01/81""#)
        .is_err());
}

#[test]
fn rollback_database_remembers_states_but_not_reality() {
    let (mut db, clock) = db_with_all_classes();
    run_story(&mut db, &clock, "r_rel");
    assert_eq!(db.classify("r_rel"), Some(DatabaseClass::StaticRollback));
    // Rollback sees the old stored state…
    let res = db
        .session()
        .query(r#"range of v is r_rel retrieve (v.rank) as of "01/01/81""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["associate"]);
    assert_eq!(res.kind, DatabaseClass::Static, "pure static result");
    // …but has no concept of when the promotion was true in reality.
    assert!(db
        .session()
        .query(r#"range of v is r_rel retrieve (v.rank) when v overlap "01/01/81""#)
        .is_err());
}

#[test]
fn historical_database_models_reality_but_forgets_beliefs() {
    let (mut db, clock) = db_with_all_classes();
    run_story(&mut db, &clock, "h_rel");
    assert_eq!(db.classify("h_rel"), Some(DatabaseClass::Historical));
    // The replace closed the associate period at its valid start (the
    // commit day, since no valid clause was given).
    let res = db
        .session()
        .query(r#"range of v is h_rel retrieve (v.rank) when v overlap "01/01/81""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["associate"]);
    let res = db
        .session()
        .query(r#"range of v is h_rel retrieve (v.rank) when v overlap "01/01/83""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["full"]);
    // But there is no rollback: the belief history is gone.
    assert!(db
        .session()
        .query(r#"range of v is h_rel retrieve (v.rank) as of "01/01/81""#)
        .is_err());
}

#[test]
fn temporal_database_captures_both() {
    let (mut db, clock) = db_with_all_classes();
    run_story(&mut db, &clock, "t_rel");
    assert_eq!(db.classify("t_rel"), Some(DatabaseClass::Temporal));
    // Reality: associate during 1981.
    let res = db
        .session()
        .query(r#"range of v is t_rel retrieve (v.rank) when v overlap "01/01/81""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["associate"]);
    // Representation: the database of 1981 believed Merrie was (still)
    // associate on that day; the database of 1983 knew she was full.
    for (as_of, expect) in [("01/01/81", "associate"), ("01/01/83", "full")] {
        let res = db
            .session()
            .query(&format!(
                r#"range of v is t_rel retrieve (v.rank)
                   when v overlap "{as_of}" as of "{as_of}""#
            ))
            .unwrap();
        assert_eq!(res.column_strings(0), [expect], "as of {as_of}");
    }
    // And both at once.
    let res = db
        .session()
        .query(
            r#"range of v is t_rel
               retrieve (v.rank)
               when v overlap "01/01/81"
               as of "01/01/83""#,
        )
        .unwrap();
    assert_eq!(res.column_strings(0), ["associate"]);
}

#[test]
fn corrections_distinguish_historical_from_rollback() {
    // A historical database can make a retroactive correction; a rollback
    // database can only append new states.
    let (mut db, clock) = db_with_all_classes();
    run_story(&mut db, &clock, "h_rel");
    clock.advance_to(d("01/01/83"));
    // Retroactive: the promotion was actually effective 01/01/82.
    db.session()
        .run(
            r#"range of v is h_rel
               replace v (rank = "full") valid from "01/01/82" to forever
               where v.name = "Merrie""#,
        )
        .unwrap();
    let res = db
        .session()
        .query(r#"range of v is h_rel retrieve (v.rank) when v overlap "03/01/82""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["full"], "corrected history");
    // No record remains of the old (wrong) belief: the old full row from
    // 06/01/82 was superseded; only the corrected rows exist.
    let rel = db.relation("h_rel").unwrap().as_historical();
    assert_eq!(rel.len(), 2, "associate (closed) + full (corrected)");
}

#[test]
fn same_updates_different_stored_tuples() {
    // The classes store radically different amounts for the same story
    // (the paper's Figure 3 vs 4 / 7 vs 8 distinction, at tuple level).
    let (mut db, clock) = db_with_all_classes();
    for rel in ["s_rel", "r_rel", "h_rel", "t_rel"] {
        run_story(&mut db, &clock, rel);
    }
    let stored = |db: &Database, rel: &str| db.relation(rel).unwrap().stored_tuples();
    assert_eq!(stored(&db, "s_rel"), 1, "static: snapshot only");
    assert_eq!(stored(&db, "r_rel"), 2, "rollback: both stored versions");
    assert_eq!(stored(&db, "h_rel"), 2, "historical: both validity rows");
    assert_eq!(stored(&db, "t_rel"), 3, "temporal: closed row + 2 current");
}

#[test]
fn outcomes_report_affected_rows() {
    let (mut db, clock) = db_with_all_classes();
    clock.advance_to(d("02/01/80"));
    db.session()
        .run(
            r#"append to t_rel (name = "A", rank = "assistant")
               append to t_rel (name = "B", rank = "assistant")"#,
        )
        .unwrap();
    clock.advance_to(d("03/01/80"));
    let out = db
        .session()
        .run(r#"range of v is t_rel replace v (rank = "associate") where v.rank = "assistant""#)
        .unwrap();
    assert!(matches!(out[1], ExecOutcome::Replaced(2)));
    clock.advance_to(d("04/01/80"));
    let out = db
        .session()
        .run(r#"range of v is t_rel delete v where v.name = "A""#)
        .unwrap();
    assert!(matches!(out[1], ExecOutcome::Deleted(1)));
}
