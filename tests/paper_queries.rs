//! The paper's four worked queries, executed through the full stack
//! (TQuel text → parser → analyzer → evaluator → database), with every
//! printed timestamp of the paper's answers asserted.

use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::period::Period;
use chronos_core::relation::Validity;
use chronos_core::taxonomy::DatabaseClass;
use chronos_db::Database;

fn d(s: &str) -> Chronon {
    date(s).unwrap()
}

/// A database with the paper's faculty history, built via TQuel.
fn paper_db() -> (Database, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    let steps: &[(&str, &str)] = &[
        (
            "08/25/77",
            r#"append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever"#,
        ),
        (
            "12/01/82",
            r#"append to faculty (name = "Tom", rank = "full") valid from "12/05/82" to forever"#,
        ),
        (
            "12/07/82",
            r#"range of f is faculty
            replace f (rank = "associate") valid from "12/05/82" to forever where f.name = "Tom""#,
        ),
        (
            "12/15/82",
            r#"range of f is faculty
            replace f (rank = "full") valid from "12/01/82" to forever where f.name = "Merrie""#,
        ),
        (
            "01/10/83",
            r#"append to faculty (name = "Mike", rank = "assistant") valid from "01/01/83" to forever"#,
        ),
        (
            "02/25/84",
            r#"range of f is faculty
            replace f (rank = "assistant") valid from "01/01/83" to "03/01/84" where f.name = "Mike""#,
        ),
    ];
    for (day, stmt) in steps {
        clock.advance_to(d(day));
        db.session().run(stmt).unwrap();
    }
    clock.advance_to(d("01/01/85"));
    (db, clock)
}

#[test]
fn query_1_static_retrieve() {
    // Section 4.1 poses the query against a *static* database whose
    // snapshot holds (Merrie, full) and (Tom, associate):
    //   retrieve (f.rank) where f.name = "Merrie"   =>  full
    let clock = Arc::new(ManualClock::new(d("01/01/85")));
    let mut db = Database::in_memory(clock);
    db.session()
        .run(
            r#"create faculty (name = str, rank = str) as static
               append to faculty (name = "Merrie", rank = "full")
               append to faculty (name = "Tom", rank = "associate")"#,
        )
        .unwrap();
    let res = db
        .session()
        .query(
            r#"range of f is faculty
               retrieve (f.rank) where f.name = "Merrie""#,
        )
        .unwrap();
    assert_eq!(res.column_strings(0), ["full"]);
    assert_eq!(res.kind, DatabaseClass::Static);

    // On the temporal database the same bare retrieve returns Merrie's
    // whole known history — both ranks, each with its valid time.
    let (mut db, _clock) = paper_db();
    let res = db
        .session()
        .query(
            r#"range of f is faculty
               retrieve (f.rank) where f.name = "Merrie""#,
        )
        .unwrap();
    let mut ranks = res.column_strings(0);
    ranks.sort();
    assert_eq!(ranks, ["associate", "full"]);
    // Restricting to "now" (any instant after the promotion) gives full.
    let res = db
        .session()
        .query(
            r#"range of f is faculty
               retrieve (f.rank) where f.name = "Merrie" when f overlap "01/01/85""#,
        )
        .unwrap();
    assert_eq!(res.column_strings(0), ["full"]);
}

#[test]
fn query_2_rollback_as_of() {
    // Section 4.2: … as of "12/10/82"  =>  associate
    let (mut db, _clock) = paper_db();
    let res = db
        .session()
        .query(
            r#"range of f is faculty
               retrieve (f.rank) where f.name = "Merrie" as of "12/10/82""#,
        )
        .unwrap();
    assert_eq!(res.column_strings(0), ["associate"]);
}

#[test]
fn query_3_historical_when() {
    // Section 4.3: retrieve (f1.rank)
    //              where f1.name = "Merrie" and f2.name = "Tom"
    //              when f1 overlap start of f2
    // => full, valid [12/01/82, ∞)
    let (mut db, _clock) = paper_db();
    let res = db
        .session()
        .query(
            r#"range of f1 is faculty
               range of f2 is faculty
               retrieve (f1.rank)
               where f1.name = "Merrie" and f2.name = "Tom"
               when f1 overlap start of f2"#,
        )
        .unwrap();
    assert_eq!(res.len(), 1);
    assert_eq!(res.column_strings(0), ["full"]);
    assert_eq!(
        res.rows[0].validity,
        Some(Validity::Interval(Period::from_start(d("12/01/82"))))
    );
    // "Note that the derived relation is also an historical relation" —
    // it came from a temporal relation, so here it is in fact temporal.
    assert_eq!(res.kind, DatabaseClass::Temporal);
}

#[test]
fn query_4_bitemporal_as_of_pair() {
    // Section 4.4: the same when-query as of 12/10/82 and 12/20/82.
    let (mut db, _clock) = paper_db();
    let q = |db: &mut Database, as_of: &str| {
        db.session()
            .query(&format!(
                r#"range of f1 is faculty
                   range of f2 is faculty
                   retrieve (f1.rank)
                   where f1.name = "Merrie" and f2.name = "Tom"
                   when f1 overlap start of f2
                   as of "{as_of}""#
            ))
            .unwrap()
    };
    // The paper's printed answer row:
    //   associate | 09/01/77 ∞ | 08/25/77 12/15/82
    let early = q(&mut db, "12/10/82");
    assert_eq!(early.len(), 1);
    let row = &early.rows[0];
    assert_eq!(row.tuple.get(0).as_str(), Some("associate"));
    assert_eq!(
        row.validity,
        Some(Validity::Interval(Period::from_start(d("09/01/77"))))
    );
    assert_eq!(
        row.tx,
        Some(Period::new(d("08/25/77"), d("12/15/82")).unwrap())
    );
    assert_eq!(early.kind, DatabaseClass::Temporal);

    // "If a similar query is made as of 12/20/82, the answer would be
    // full because the fact was recorded retroactively by that time."
    let late = q(&mut db, "12/20/82");
    assert_eq!(late.column_strings(0), ["full"]);
    assert_eq!(
        late.rows[0].validity,
        Some(Validity::Interval(Period::from_start(d("12/01/82"))))
    );
}

#[test]
fn derived_temporal_relations_close_under_queries() {
    // §4.4: "This derived relation is a temporal relation, so further
    // temporal relations can be derived from it."  We verify closure by
    // checking the result carries both timestamps and that restricting
    // by them reproduces the same answers.
    let (mut db, _clock) = paper_db();
    let res = db
        .session()
        .query(
            r#"range of f1 is faculty
               retrieve (f1.name, f1.rank)
               when f1 overlap "06/01/83""#,
        )
        .unwrap();
    assert_eq!(res.kind, DatabaseClass::Temporal);
    for row in &res.rows {
        assert!(row.validity.is_some());
        assert!(row.tx.is_some());
        assert!(row.validity.unwrap().valid_at(d("06/01/83")));
    }
    // Exactly the people serving on 06/01/83: Merrie (full), Tom, Mike.
    let mut names = res.column_strings(0);
    names.sort();
    assert_eq!(names, ["Merrie", "Mike", "Tom"]);
}

#[test]
fn the_inconsistency_window_is_observable() {
    // §4.3's point: the static-rollback answer and the historical answer
    // for "Merrie's rank on 12/05/82" differ because the database was
    // inconsistent with reality from 12/01/82 to 12/15/82.  A temporal
    // database exposes the window precisely.
    let (mut db, _clock) = paper_db();
    let mut window = Vec::new();
    for day in [
        "11/30/82", "12/01/82", "12/10/82", "12/14/82", "12/15/82", "12/16/82",
    ] {
        // What the database believed *on `day`* about Merrie's rank on
        // `day` — valid and transaction time pinned to the same instant…
        let as_stored = db
            .session()
            .query(&format!(
                r#"range of f is faculty
                   retrieve (f.rank) where f.name = "Merrie"
                   when f overlap "{day}" as of "{day}""#
            ))
            .unwrap();
        // …versus what it *now* knows was true on `day`.
        let as_known_now = db
            .session()
            .query(&format!(
                r#"range of f is faculty
                   retrieve (f.rank) where f.name = "Merrie"
                   when f overlap "{day}""#
            ))
            .unwrap();
        let stored = as_stored.column_strings(0).join(",");
        let known = as_known_now.column_strings(0).join(",");
        window.push((day, stored != known));
    }
    assert_eq!(
        window,
        [
            ("11/30/82", false),
            ("12/01/82", true), // promoted in reality, not yet recorded
            ("12/10/82", true),
            ("12/14/82", true),
            ("12/15/82", false), // correction recorded
            ("12/16/82", false),
        ]
    );
}
