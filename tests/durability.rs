//! Durability and failure injection: reopen, torn log tails, corrupted
//! interior frames, catalog corruption, and crash points between catalog
//! and log writes.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::relation::temporal::TemporalStore as _;
use chronos_db::Database;

fn d(s: &str) -> Chronon {
    date(s).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronos-dur-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn populated(dir: &Path) {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::open(dir, clock.clone()).unwrap();
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    for (day, stmt) in [
        (
            "02/01/80",
            r#"append to faculty (name = "Merrie", rank = "associate")"#,
        ),
        (
            "03/01/80",
            r#"append to faculty (name = "Tom", rank = "assistant")"#,
        ),
        (
            "04/01/80",
            r#"range of f is faculty replace f (rank = "full") where f.name = "Merrie""#,
        ),
    ] {
        clock.advance_to(d(day));
        db.session().run(stmt).unwrap();
    }
}

#[test]
fn reopen_reproduces_the_database() {
    let dir = temp_dir("reopen");
    populated(&dir);
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let mut db = Database::open(&dir, clock).unwrap();
    assert!(db.is_durable());
    // A bare retrieve returns the whole current historical state — both
    // of Merrie's validity rows survive the reopen…
    let res = db
        .session()
        .query(r#"range of f is faculty retrieve (f.rank) where f.name = "Merrie""#)
        .unwrap();
    let mut all = res.column_strings(0);
    all.sort();
    assert_eq!(all, ["associate", "full"]);
    // …and reality *now* is `full`.
    let res = db
        .session()
        .query(r#"range of f is faculty retrieve (f.rank) where f.name = "Merrie" when f overlap "06/01/80""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["full"]);
    // And the belief history survived too.
    let res = db
        .session()
        .query(
            r#"range of f is faculty retrieve (f.rank) where f.name = "Merrie" as of "03/15/80""#,
        )
        .unwrap();
    assert_eq!(res.column_strings(0), ["associate"]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn new_commits_after_reopen_stay_append_only() {
    let dir = temp_dir("resume");
    populated(&dir);
    {
        // Reopen with a clock stuck in the past: commit times must still
        // advance past the replayed history.
        let clock = Arc::new(ManualClock::new(d("01/01/70"))); // long ago
        let mut db = Database::open(&dir, clock).unwrap();
        db.session()
            .run(r#"append to faculty (name = "Mike", rank = "assistant")"#)
            .unwrap();
        let rel = db.relation("faculty").unwrap().as_temporal();
        assert!(rel.last_commit().unwrap() > d("04/01/80"));
    }
    // The whole thing replays again.
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open(&dir, clock).unwrap();
    assert_eq!(
        db.relation("faculty").unwrap().as_temporal().transactions(),
        4
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_is_truncated_on_open() {
    let dir = temp_dir("torn");
    populated(&dir);
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal"))
            .unwrap();
        f.write_all(&[0x99, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE])
            .unwrap();
    }
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open(&dir, clock).unwrap();
    assert_eq!(
        db.relation("faculty").unwrap().as_temporal().transactions(),
        3,
        "all intact commits survive, the torn frame is dropped"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_mid_record_recovers_and_journals_wal_truncated() {
    let dir = temp_dir("midrec");
    populated(&dir);
    // Cut the log mid-way through its *last* record: a crash during the
    // final append, torn at an arbitrary byte.
    let wal_path = dir.join("wal");
    let len = std::fs::metadata(&wal_path).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open(&dir, clock).expect("torn tail must degrade, not fail");
    assert_eq!(
        db.relation("faculty").unwrap().as_temporal().transactions(),
        2,
        "the two intact commits survive, the torn third is dropped"
    );
    // Graceful degradation is journaled, not silent.
    let journal = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let line = journal
        .lines()
        .find(|l| l.contains("\"event\": \"wal_truncated\""))
        .expect("wal_truncated event journaled");
    assert!(
        line.contains("\"torn_bytes\": "),
        "event records the torn span: {line}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checksum_flip_in_last_record_recovers_and_journals_wal_truncated() {
    let dir = temp_dir("crcflip");
    populated(&dir);
    // Walk the `[len][crc][payload]` framing to the last record and
    // flip one byte of its stored checksum (bit-rot on the crc itself).
    let wal_path = dir.join("wal");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let mut offset = 0usize;
    let mut last = 0usize;
    while offset + 8 <= bytes.len() {
        last = offset;
        let frame_len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + frame_len;
    }
    bytes[last + 4] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open(&dir, clock).expect("checksum mismatch must degrade, not fail");
    assert_eq!(
        db.relation("faculty").unwrap().as_temporal().transactions(),
        2,
        "recovery keeps the prefix before the damaged record"
    );
    let journal = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    assert!(
        journal.contains("\"event\": \"wal_truncated\""),
        "dropping the damaged record must be journaled"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interior_corruption_keeps_the_valid_prefix() {
    let dir = temp_dir("interior");
    populated(&dir);
    // Flip a byte inside the SECOND frame's payload.
    let wal_path = dir.join("wal");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let target = 8 + first_len + 8 + 2;
    bytes[target] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open(&dir, clock).unwrap();
    // Only the first commit survives; framing is lost from the bad frame.
    assert_eq!(
        db.relation("faculty").unwrap().as_temporal().transactions(),
        1
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_catalog_is_reported() {
    let dir = temp_dir("catalog");
    populated(&dir);
    let cat_path = dir.join("catalog");
    let mut bytes = std::fs::read(&cat_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&cat_path, &bytes).unwrap();
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    assert!(
        Database::open(&dir, clock).is_err(),
        "checksum failure must not be silently ignored"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_directory_is_a_fresh_database() {
    let dir = temp_dir("fresh");
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let db = Database::open(&dir, clock).unwrap();
    assert!(db.relation_names().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_bounds_recovery_and_preserves_history() {
    let dir = temp_dir("ckpt");
    populated(&dir);
    // Checkpoint: the WAL empties, the state moves into the image.
    {
        let clock = Arc::new(ManualClock::new(d("06/01/80")));
        let mut db = Database::open(&dir, clock).unwrap();
        let wal_before = std::fs::metadata(dir.join("wal")).unwrap().len();
        assert!(wal_before > 0);
        db.checkpoint().unwrap();
        assert_eq!(std::fs::metadata(dir.join("wal")).unwrap().len(), 0);
        assert!(dir.join("checkpoint").exists());
    }
    // Reopen from the checkpoint alone: every version and the belief
    // history must survive — a temporal database forgets nothing.
    {
        let clock = Arc::new(ManualClock::new(d("07/01/80")));
        let mut db = Database::open(&dir, clock.clone()).unwrap();
        let rel = db.relation("faculty").unwrap().as_temporal();
        assert_eq!(rel.transactions(), 3);
        assert_eq!(rel.last_commit(), Some(d("04/01/80")));
        let res = db
            .session()
            .query(r#"range of f is faculty retrieve (f.rank) where f.name = "Merrie" as of "03/15/80""#)
            .unwrap();
        assert_eq!(
            res.column_strings(0),
            ["associate"],
            "pre-checkpoint belief intact"
        );
        // New commits land in the (fresh) log on top of the checkpoint…
        clock.advance_to(d("08/01/80"));
        db.session()
            .run(r#"append to faculty (name = "Mike", rank = "assistant")"#)
            .unwrap();
    }
    // …and both layers compose on the next open.
    {
        let clock = Arc::new(ManualClock::new(d("09/01/80")));
        let mut db = Database::open(&dir, clock).unwrap();
        let rel = db.relation("faculty").unwrap().as_temporal();
        assert_eq!(rel.transactions(), 4);
        let res = db
            .session()
            .query(r#"range of f is faculty retrieve (f.name) when f overlap "08/15/80""#)
            .unwrap();
        let mut names = res.column_strings(0);
        names.sort();
        assert_eq!(names, ["Merrie", "Mike", "Tom"]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_round_trips_every_class() {
    let dir = temp_dir("ckpt-all");
    {
        let clock = Arc::new(ManualClock::new(d("01/01/80")));
        let mut db = Database::open(&dir, clock.clone()).unwrap();
        db.session()
            .run(
                r#"
            create s (name = str) as static
            create r (name = str) as rollback
            create h (name = str) as historical
            create t (name = str) as temporal
            create e (name = str, stamp = date) as temporal event
        "#,
            )
            .unwrap();
        for rel in ["s", "r", "h", "t"] {
            clock.tick(1);
            db.session()
                .run(&format!(r#"append to {rel} (name = "x")"#))
                .unwrap();
            clock.tick(1);
            db.session()
                .run(&format!(
                    r#"range of v is {rel} delete v where v.name = "x""#
                ))
                .unwrap();
            clock.tick(1);
            db.session()
                .run(&format!(r#"append to {rel} (name = "y")"#))
                .unwrap();
        }
        clock.tick(1);
        db.session()
            .run(r#"append to e (name = "ev", stamp = "01/15/80") valid at "01/10/80""#)
            .unwrap();
        db.checkpoint().unwrap();
    }
    let clock = Arc::new(ManualClock::new(d("06/01/80")));
    let mut db = Database::open(&dir, clock).unwrap();
    for rel in ["s", "r"] {
        let res = db
            .session()
            .query(&format!("range of v is {rel} retrieve (v.name)"))
            .unwrap();
        assert_eq!(res.column_strings(0), ["y"], "{rel}");
    }
    // The rollback relation still answers as-of across the checkpoint.
    // (`r` was loaded second: its `x` lived from the 4th to the 5th tick.)
    let res = db
        .session()
        .query(&format!(
            r#"range of v is r retrieve (v.name) as of "{}""#,
            chronos_core::calendar::Date::from_chronon(d("01/01/80") + 4)
        ))
        .unwrap();
    assert_eq!(res.column_strings(0), ["x"]);
    // Event relation round-trips its instant validity.
    let res = db
        .session()
        .query(r#"range of v is e retrieve (v.stamp) when v overlap "01/10/80""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["01/15/80"]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_checkpoint_is_reported() {
    let dir = temp_dir("ckpt-bad");
    populated(&dir);
    {
        let clock = Arc::new(ManualClock::new(d("06/01/80")));
        let mut db = Database::open(&dir, clock).unwrap();
        db.checkpoint().unwrap();
    }
    let path = dir.join("checkpoint");
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let clock = Arc::new(ManualClock::new(d("07/01/80")));
    assert!(Database::open(&dir, clock).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mixed_classes_replay_correctly() {
    let dir = temp_dir("mixed");
    {
        let clock = Arc::new(ManualClock::new(d("01/01/80")));
        let mut db = Database::open(&dir, clock.clone()).unwrap();
        db.session()
            .run(
                r#"
            create s (name = str) as static
            create r (name = str) as rollback
            create h (name = str) as historical
            create t (name = str) as temporal
        "#,
            )
            .unwrap();
        for rel in ["s", "r", "h", "t"] {
            clock.tick(1);
            db.session()
                .run(&format!(r#"append to {rel} (name = "x")"#))
                .unwrap();
            clock.tick(1);
            db.session()
                .run(&format!(r#"append to {rel} (name = "y")"#))
                .unwrap();
            clock.tick(1);
            db.session()
                .run(&format!(
                    r#"range of v is {rel} delete v where v.name = "x""#
                ))
                .unwrap();
        }
    }
    let clock = Arc::new(ManualClock::new(d("01/01/81")));
    let mut db = Database::open(&dir, clock).unwrap();
    for rel in ["s", "r"] {
        // Static classes: the delete removed the tuple outright.
        let res = db
            .session()
            .query(&format!("range of v is {rel} retrieve (v.name)"))
            .unwrap();
        assert_eq!(res.column_strings(0), ["y"], "{rel} replayed wrong");
    }
    for rel in ["h", "t"] {
        // Timestamped classes: x's row remains with a closed validity;
        // only y is valid *now*.
        let res = db
            .session()
            .query(&format!(
                r#"range of v is {rel} retrieve (v.name) when v overlap "06/01/80""#
            ))
            .unwrap();
        assert_eq!(res.column_strings(0), ["y"], "{rel} replayed wrong");
    }
    // The rollback relation still remembers x's tenure.
    use chronos_core::relation::rollback::RollbackStore as _;
    let rb = db.relation("r").unwrap().as_rollback();
    assert_eq!(rb.stored_tuples(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}
