//! Temporal introspection end-to-end: the engine's telemetry queried
//! *as relations* through TQuel.  `sys$stats` is an event relation
//! indexed at transaction time, so the paper's own rollback vocabulary
//! ("as best known at t") answers operational questions — "how many
//! commits had we seen as of noon?" — with no new query surface.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_db::{Database, ObsBootstrap};
use chronos_obs::{http_get, validate_json};

fn d(s: &str) -> Chronon {
    date(s).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("chronos-introspect-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One workload step: advance the clock, run a statement.
fn step(db: &mut Database, clock: &Arc<ManualClock>, day: &str, stmt: &str) {
    clock.advance_to(d(day));
    db.session()
        .run(stmt)
        .unwrap_or_else(|e| panic!("{stmt}: {e}"));
}

/// The sampled `commits` counter as best known at `as_of`.
fn commits_as_of(db: &mut Database, as_of: &str) -> Vec<i64> {
    db.session()
        .query(&format!(
            r#"range of s is sys$stats
               retrieve (s.value) where s.metric = "commits" as of "{as_of}""#
        ))
        .expect("rollback query over sys$stats")
        .rows
        .iter()
        .map(|r| r.tuple.get(0).as_int().expect("int value"))
        .collect()
}

/// The acceptance scenario: sample, advance the workload, sample again,
/// then ask for the counter values that were current at two distinct
/// as-of points and get two distinct (correct) answers.
#[test]
fn sys_stats_as_of_returns_the_then_current_counters() {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    step(
        &mut db,
        &clock,
        "01/05/80",
        r#"append to faculty (name = "Merrie", rank = "associate")"#,
    );

    clock.advance_to(d("02/01/80"));
    let t1 = db.sample_now();
    assert_eq!(t1, d("02/01/80"), "sample lands at the clock reading");
    let commits_t1 = db.engine_stats().metrics.commits as i64;
    assert_eq!(commits_t1, 1);

    step(
        &mut db,
        &clock,
        "02/10/80",
        r#"append to faculty (name = "Tom", rank = "full")"#,
    );
    step(
        &mut db,
        &clock,
        "02/11/80",
        r#"append to faculty (name = "Jane", rank = "assistant")"#,
    );

    clock.advance_to(d("03/01/80"));
    let t2 = db.sample_now();
    assert_eq!(t2, d("03/01/80"));
    let commits_t2 = db.engine_stats().metrics.commits as i64;
    assert_eq!(commits_t2, 3);

    // Two distinct as-of points, two distinct counter values.
    assert_eq!(commits_as_of(&mut db, "02/01/80"), vec![commits_t1]);
    assert_eq!(commits_as_of(&mut db, "03/01/80"), vec![commits_t2]);
    // Between samples the earlier one is still the current belief.
    assert_eq!(commits_as_of(&mut db, "02/15/80"), vec![commits_t1]);
    // Before any sample, nothing was known.
    assert_eq!(commits_as_of(&mut db, "01/02/80"), Vec::<i64>::new());

    // The default (no as-of) view is the newest sample only.
    let now = db
        .session()
        .query(r#"range of s is sys$stats retrieve (s.value) where s.metric = "commits""#)
        .expect("current query");
    assert_eq!(now.rows.len(), 1);
    assert_eq!(now.rows[0].tuple.get(0).as_int(), Some(commits_t2));
}

/// `when` works over telemetry: samples carry their sampling event as
/// validity, so valid-time predicates select among them.
#[test]
fn when_clause_selects_samples_by_their_sampling_event() {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str) as temporal")
        .expect("create");
    step(
        &mut db,
        &clock,
        "01/05/80",
        r#"append to faculty (name = "Merrie")"#,
    );
    clock.advance_to(d("02/01/80"));
    db.sample_now();
    step(
        &mut db,
        &clock,
        "02/10/80",
        r#"append to faculty (name = "Tom")"#,
    );
    clock.advance_to(d("03/01/80"));
    db.sample_now();

    // A through-window exposes both samples; the when clause picks the
    // one whose sampling event is 02/01/80.
    let res = db
        .session()
        .query(
            r#"range of s is sys$stats
               retrieve (s.value) where s.metric = "commits"
               when s overlap "02/01/80"
               as of "01/01/80" through "04/01/80""#,
        )
        .expect("when over telemetry");
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0].tuple.get(0).as_int(), Some(1));
}

/// `sys$relations` is a static rollback view of the catalog: DDL and
/// commits are sampled synchronously, so as-of answers are exact.
#[test]
fn sys_relations_rolls_the_catalog_back_across_ddl() {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    step(
        &mut db,
        &clock,
        "01/05/80",
        r#"append to faculty (name = "Merrie", rank = "associate")"#,
    );
    step(
        &mut db,
        &clock,
        "02/10/80",
        r#"append to faculty (name = "Tom", rank = "full")"#,
    );
    clock.advance_to(d("04/01/80"));
    db.session()
        .run("create dept (name = str) as static")
        .expect("create dept");

    // Current catalog: both relations, as pure static rows.
    let now = db
        .session()
        .query(r#"range of r is sys$relations retrieve (r.name, r.class, r.tuples)"#)
        .expect("current catalog");
    let mut names = now.column_strings(0);
    names.sort();
    assert_eq!(names, ["dept", "faculty"]);
    assert!(now
        .rows
        .iter()
        .all(|r| r.validity.is_none() && r.tx.is_none()));

    // As of before dept existed: faculty alone, with the tuple count it
    // had then.
    let then = db
        .session()
        .query(
            r#"range of r is sys$relations
               retrieve (r.name, r.tuples) as of "03/01/80""#,
        )
        .expect("rollback catalog");
    assert_eq!(then.column_strings(0), ["faculty"]);
    assert_eq!(then.rows[0].tuple.get(1).as_int(), Some(2));

    // As of before the first append: cataloged but empty.
    let empty = db
        .session()
        .query(
            r#"range of r is sys$relations
               retrieve (r.name, r.tuples) as of "01/02/80""#,
        )
        .expect("rollback catalog");
    assert_eq!(empty.rows[0].tuple.get(1).as_int(), Some(0));
}

/// Every modification path refuses the reserved namespace.
#[test]
fn system_relations_are_read_only() {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.sample_now();
    for stmt in [
        r#"append to sys$stats (metric = "forged", value = 1)"#,
        "create sys$mine (a = int) as static",
        "destroy sys$stats",
        "range of s is sys$stats delete s",
        r#"range of s is sys$stats replace s (value = 0)"#,
        r#"range of s is sys$stats retrieve into sys$copy (s.metric)"#,
    ] {
        let err = db.session().run(stmt).expect_err(stmt).to_string();
        assert!(err.contains("read-only"), "{stmt}: {err}");
    }
    // Unknown sys$ names are ordinary unknown relations.
    let err = db
        .session()
        .run("range of x is sys$nope")
        .expect_err("unknown system relation")
        .to_string();
    assert!(err.contains("unknown relation"), "{err}");
}

/// Ordinary TQuel aggregates run over telemetry unchanged.
#[test]
fn aggregates_run_over_sys_stats() {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str) as temporal")
        .expect("create");
    step(
        &mut db,
        &clock,
        "01/05/80",
        r#"append to faculty (name = "Merrie")"#,
    );
    clock.advance_to(d("02/01/80"));
    db.sample_now();
    let res = db
        .session()
        .query(
            r#"range of s is sys$stats
               retrieve (n = count(s.metric), hi = max(s.value))"#,
        )
        .expect("aggregate over telemetry");
    let n = res.rows[0].tuple.get(0).as_int().unwrap();
    let hi = res.rows[0].tuple.get(1).as_int().unwrap();
    assert!(n > 20, "the flattened metric set is wide, got {n}");
    assert!(hi >= 1, "some counter advanced, got {hi}");

    // explain works too: the system scan is spanned like any other.
    let outcomes = db
        .session()
        .run(r#"range of s is sys$stats explain retrieve (s.metric)"#)
        .expect("explain over telemetry");
    let report = match &outcomes[1] {
        chronos_db::ExecOutcome::Explained { report, .. } => report.clone(),
        other => panic!("expected explain, got {other:?}"),
    };
    assert!(report.contains("db/scan"), "{report}");
}

/// The background sampler feeds `sys$stats` while the HTTP surface
/// (`/history`, `/events`, `/readyz`) and the journal observe its
/// lifecycle; `sys$slow` and `sys$events` project the slow log and the
/// journal into TQuel.
#[test]
fn background_sampler_and_system_relations_on_a_durable_database() {
    let dir = temp_dir("sampler");
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let obs = ObsBootstrap::new();
    let server = obs.serve("127.0.0.1:0").expect("serve");
    let addr = server.addr().to_string();
    let mut db = Database::open_with_obs(&dir, clock.clone(), &obs).expect("open");
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    step(
        &mut db,
        &clock,
        "02/01/80",
        r#"append to faculty (name = "Merrie", rank = "associate")"#,
    );

    assert!(!db.sampler_running());
    db.start_stats_sampler(Duration::from_millis(5))
        .expect("sampler");
    assert!(db.sampler_running());
    let (status, ready) = http_get(&addr, "/readyz").expect("GET /readyz");
    assert_eq!(status, 200);
    assert!(ready.contains("\"sampler_running\": true"), "{ready}");

    // Wait for the thread to take at least two samples.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while db.telemetry().stats().samples_taken < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "sampler never sampled"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let (status, hist) = http_get(&addr, "/history?metric=commits&n=8").expect("GET /history");
    assert_eq!(status, 200);
    validate_json(&hist).expect("untorn /history JSON");
    assert!(hist.contains("\"metric\": \"commits\""), "{hist}");
    assert!(hist.contains("\"value\": 1"), "{hist}");
    let (status, body) = http_get(&addr, "/history").expect("GET /history sans metric");
    assert_eq!(status, 400, "{body}");

    let (status, events) = http_get(&addr, "/events?n=50").expect("GET /events");
    assert_eq!(status, 200);
    validate_json(&events).expect("untorn /events JSON");
    assert!(events.contains("\"event\": \"sampler_start\""), "{events}");

    db.stop_stats_sampler();
    assert!(!db.sampler_running());
    let (_, ready) = http_get(&addr, "/readyz").expect("GET /readyz");
    assert!(ready.contains("\"sampler_running\": false"), "{ready}");

    // The sampler's own counters ride in engine_stats().
    let stats = db.engine_stats();
    assert!(stats.telemetry.samples_taken >= 2);
    assert!(!stats.telemetry.sampler_running);
    assert!(stats.to_json().contains("\"telemetry\""));
    assert!(stats
        .to_prometheus()
        .contains("chronos_telemetry_samples_taken"));

    // sys$events projects the journal into TQuel…
    let res = db
        .session()
        .query(r#"range of e is sys$events retrieve (e.kind, e.seq)"#)
        .expect("sys$events");
    let events = res.column_strings(0);
    assert!(events.iter().any(|e| e == "wal_append"), "{events:?}");
    assert!(events.iter().any(|e| e == "sampler_stop"), "{events:?}");

    // …and sys$slow the slow-query ring, with the capture clock reading
    // as the row's validity event.
    db.set_slow_query_threshold_ns(0);
    db.session()
        .query(r#"range of f is faculty retrieve (f.name)"#)
        .expect("slow-captured query");
    let res = db
        .session()
        .query(r#"range of w is sys$slow retrieve (w.statement, w.duration_ns)"#)
        .expect("sys$slow");
    assert!(!res.rows.is_empty());
    assert!(
        res.rows.iter().any(|r| r
            .tuple
            .get(0)
            .as_str()
            .is_some_and(|s| s.contains("retrieve (f.name)"))),
        "captured statement missing"
    );
    assert!(res
        .rows
        .iter()
        .all(|r| matches!(r.validity, Some(chronos_core::relation::Validity::Event(_)))));

    server.shutdown();
    drop(db);
    // The journal recorded the sampler lifecycle durably.
    let journal = std::fs::read_to_string(dir.join("events.jsonl")).expect("journal");
    assert!(
        journal.contains("\"event\": \"sampler_start\""),
        "{journal}"
    );
    assert!(journal.contains("\"event\": \"sampler_stop\""), "{journal}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Restarting the sampler replaces the previous thread, and dropping
/// the database joins it (no leaked threads, no double-running flags).
#[test]
fn sampler_restart_replaces_the_previous_thread() {
    let clock = Arc::new(ManualClock::new(d("01/01/80")));
    let mut db = Database::in_memory(clock);
    db.start_stats_sampler(Duration::from_millis(400))
        .expect("first");
    assert!(db.sampler_running());
    db.start_stats_sampler(Duration::from_millis(400))
        .expect("second");
    assert!(db.sampler_running());
    db.stop_stats_sampler();
    assert!(!db.sampler_running());
    // Idempotent stop.
    db.stop_stats_sampler();
    assert!(!db.sampler_running());
}
