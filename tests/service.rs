//! The TQuel network service end to end over loopback: many clients
//! against one engine, snapshot semantics of pinned vs refreshing
//! requests, error propagation, and clean shutdown.

use std::sync::Arc;

use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_db::{Database, Engine, QueryClient, QueryServer};

fn serve_fresh() -> (Arc<Engine>, QueryServer) {
    let clock = Arc::new(ManualClock::new(Chronon::new(0)));
    let db = Database::in_memory(clock);
    let engine = Engine::start(db);
    engine
        .session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    let server = QueryServer::serve(Arc::clone(&engine), "127.0.0.1:0").expect("serve");
    (engine, server)
}

#[test]
fn four_clients_replay_fifty_statements_each() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let mut handles = Vec::new();
    for c in 0..4 {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = QueryClient::connect(&addr).expect("connect");
            assert!(client.ping().expect("ping"), "service answers ping");
            for i in 0..50 {
                let resp = if i % 5 == 4 {
                    // Every fifth statement reads back through the
                    // same connection's session.
                    client
                        .execute("range of f is faculty retrieve (f.name)")
                        .expect("retrieve round trip")
                } else {
                    client
                        .execute(&format!(
                            r#"append to faculty (name = "c{c}s{i:02}", rank = "assistant")"#
                        ))
                        .expect("append round trip")
                };
                assert!(resp.ok, "statement {i} on client {c} failed: {}", resp.body);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    // 4 clients × 40 appends each actually committed.
    let stats = engine.stats();
    assert_eq!(stats.metrics.commits, 160);
    let rows = engine
        .session()
        .query("range of f is faculty retrieve (f.name)")
        .expect("final count")
        .rows
        .len();
    assert_eq!(rows, 160);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn pinned_requests_hold_their_snapshot_but_execute_refreshes() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let mut reader = QueryClient::connect(&addr).expect("reader connect");
    let mut writer = QueryClient::connect(&addr).expect("writer connect");
    let q = "range of f is faculty retrieve (f.name)";
    // Pin the reader's connection at the empty relation.
    let before = reader.execute_pinned(q).expect("pin");
    assert!(before.ok);
    let resp = writer
        .execute(r#"append to faculty (name = "Merrie", rank = "full")"#)
        .expect("append");
    assert!(resp.ok, "{}", resp.body);
    // Pinned requests keep serving the old snapshot...
    let pinned = reader.execute_pinned(q).expect("pinned read");
    assert_eq!(pinned.body, before.body, "pinned snapshot moved");
    // ...while a plain execute refreshes to the durable watermark.
    let fresh = reader.execute(q).expect("refreshing read");
    assert_ne!(fresh.body, before.body, "execute must see the commit");
    assert!(fresh.body.contains("Merrie"));
    server.shutdown();
    engine.shutdown();
}

#[test]
fn service_reports_errors_without_dropping_the_connection() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let mut client = QueryClient::connect(&addr).expect("connect");
    let bad = client.execute("retrieve (f.name)").expect("round trip");
    assert!(!bad.ok, "undeclared range variable must fail");
    assert!(!bad.body.is_empty(), "error responses carry a message");
    // The connection (and its session) survives the error.
    let good = client
        .execute(r#"append to faculty (name = "Ann", rank = "lecturer")"#)
        .expect("round trip after error");
    assert!(good.ok, "{}", good.body);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn client_chosen_trace_id_round_trips_end_to_end() {
    let clock = Arc::new(ManualClock::new(Chronon::new(0)));
    let db = Database::in_memory(clock);
    // Capture everything so the traced statement lands in the slow log.
    db.set_slow_query_threshold_ns(0);
    let engine = Engine::start(db);
    engine
        .session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    let server = QueryServer::serve(Arc::clone(&engine), "127.0.0.1:0").expect("serve");
    let addr = server.addr().to_string();

    let mut client = QueryClient::connect(&addr).expect("connect");
    let resp = client
        .execute_traced(
            r#"append to faculty (name = "Merrie", rank = "full")"#,
            "req-42",
        )
        .expect("traced execute");
    assert!(resp.ok, "{}", resp.body);
    // The wire response echoes the client-chosen id...
    assert_eq!(resp.trace_id, "req-42");
    // ...the slow-query log carries it...
    let slow = engine.with_db(|db| db.recorder().slowlog().to_json());
    assert!(
        slow.contains("\"req-42\""),
        "slow log missing trace: {slow}"
    );
    // ...and a second connection sees it live in sys$sessions.
    let mut observer = QueryClient::connect(&addr).expect("observer connect");
    let sessions = observer
        .execute("range of s is sys$sessions retrieve (s.trace_id)")
        .expect("sys$sessions over the wire");
    assert!(sessions.ok, "{}", sessions.body);
    assert!(
        sessions.body.contains("req-42"),
        "sys$sessions missing trace: {}",
        sessions.body
    );
    // Without a client id the server mints one and still echoes it.
    let minted = client
        .execute("range of f is faculty retrieve (f.name)")
        .expect("untraced execute");
    assert!(minted.ok, "{}", minted.body);
    assert!(
        minted.trace_id.starts_with("t-"),
        "server-minted id has the t- prefix, got {:?}",
        minted.trace_id
    );
    // Oversized client-side trace ids are a typed local error, not a frame.
    let too_long = "x".repeat(256);
    let err = client
        .execute_traced("retrieve (f.name)", &too_long)
        .expect_err("trace over 255 bytes must fail client-side");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    server.shutdown();
    engine.shutdown();
}

/// Reads everything the server sends before closing, then parses the
/// single `[u32 len][u8 status][u8 trace_len][trace][body]` frame.
fn read_error_frame(stream: &mut std::net::TcpStream) -> (u8, String) {
    use std::io::Read;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("drain connection");
    assert!(bytes.len() >= 6, "no complete frame, got {bytes:?}");
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    assert_eq!(4 + len, bytes.len(), "exactly one frame before close");
    let status = bytes[4];
    let trace_len = bytes[5] as usize;
    assert_eq!(trace_len, 0, "protocol errors carry no trace id");
    (status, String::from_utf8_lossy(&bytes[6..]).into_owned())
}

#[test]
fn oversized_frame_gets_a_clean_error_frame_and_close() {
    use std::io::Write;
    let (engine, server) = serve_fresh();
    let addr = server.addr();
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    // A length word over the cap is rejected before any payload is read.
    let huge = (chronos_db::net::MAX_FRAME_BYTES + 1) as u32;
    raw.write_all(&huge.to_le_bytes()).expect("send length");
    raw.flush().expect("flush");
    let (status, body) = read_error_frame(&mut raw);
    assert_eq!(status, 1, "protocol violations answer STATUS_ERR");
    assert!(
        body.contains("protocol error") && body.contains("bad frame length"),
        "unexpected body: {body}"
    );
    // The violation is visible in the net metrics...
    let stats = engine.stats();
    assert!(stats.metrics.net_errors >= 1, "net_errors not counted");
    // ...and the server keeps accepting fresh connections.
    let mut client = QueryClient::connect(&addr.to_string()).expect("reconnect");
    assert!(client.ping().expect("ping after violation"));
    server.shutdown();
    engine.shutdown();
}

#[test]
fn truncated_frame_gets_a_clean_error_frame_and_close() {
    use std::io::Write;
    let (engine, server) = serve_fresh();
    let addr = server.addr();
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    // Promise a 100-byte frame, deliver 6, hang up mid-frame.
    raw.write_all(&100u32.to_le_bytes()).expect("send length");
    raw.write_all(&[1u8; 6]).expect("send partial payload");
    raw.flush().expect("flush");
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    let (status, body) = read_error_frame(&mut raw);
    assert_eq!(status, 1, "truncation answers STATUS_ERR");
    assert!(
        body.contains("protocol error") && body.contains("truncated frame"),
        "unexpected body: {body}"
    );
    let stats = engine.stats();
    assert!(stats.metrics.net_errors >= 1, "net_errors not counted");
    assert!(
        stats.metrics.net_requests >= 1,
        "violations still count as requests"
    );
    let mut client = QueryClient::connect(&addr.to_string()).expect("reconnect");
    assert!(client.ping().expect("ping after truncation"));
    server.shutdown();
    engine.shutdown();
}

#[test]
fn pings_count_in_net_metrics() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let before = engine.stats().metrics;
    let mut client = QueryClient::connect(&addr).expect("connect");
    for _ in 0..3 {
        assert!(client.ping().expect("ping"));
    }
    let after = engine.stats().metrics;
    assert!(
        after.net_requests >= before.net_requests + 3,
        "pings must count as requests"
    );
    assert!(after.net_bytes_in > before.net_bytes_in);
    assert!(after.net_bytes_out > before.net_bytes_out);
    assert_eq!(after.net_errors, before.net_errors, "pings are not errors");
    server.shutdown();
    engine.shutdown();
}

#[test]
fn shutdown_unblocks_connected_clients() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let mut client = QueryClient::connect(&addr).expect("connect");
    assert!(client.ping().expect("ping"));
    server.shutdown();
    // Further requests fail at the transport layer rather than hanging.
    let outcome = client.ping();
    assert!(
        outcome.is_err() || !outcome.unwrap(),
        "ping succeeded against a stopped server"
    );
    engine.shutdown();
}
