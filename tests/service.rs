//! The TQuel network service end to end over loopback: many clients
//! against one engine, snapshot semantics of pinned vs refreshing
//! requests, error propagation, and clean shutdown.

use std::sync::Arc;

use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_db::{Database, Engine, QueryClient, QueryServer};

fn serve_fresh() -> (Arc<Engine>, QueryServer) {
    let clock = Arc::new(ManualClock::new(Chronon::new(0)));
    let db = Database::in_memory(clock);
    let engine = Engine::start(db);
    engine
        .session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");
    let server = QueryServer::serve(Arc::clone(&engine), "127.0.0.1:0").expect("serve");
    (engine, server)
}

#[test]
fn four_clients_replay_fifty_statements_each() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let mut handles = Vec::new();
    for c in 0..4 {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = QueryClient::connect(&addr).expect("connect");
            assert!(client.ping().expect("ping"), "service answers ping");
            for i in 0..50 {
                let resp = if i % 5 == 4 {
                    // Every fifth statement reads back through the
                    // same connection's session.
                    client
                        .execute("range of f is faculty retrieve (f.name)")
                        .expect("retrieve round trip")
                } else {
                    client
                        .execute(&format!(
                            r#"append to faculty (name = "c{c}s{i:02}", rank = "assistant")"#
                        ))
                        .expect("append round trip")
                };
                assert!(resp.ok, "statement {i} on client {c} failed: {}", resp.body);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    // 4 clients × 40 appends each actually committed.
    let stats = engine.stats();
    assert_eq!(stats.metrics.commits, 160);
    let rows = engine
        .session()
        .query("range of f is faculty retrieve (f.name)")
        .expect("final count")
        .rows
        .len();
    assert_eq!(rows, 160);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn pinned_requests_hold_their_snapshot_but_execute_refreshes() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let mut reader = QueryClient::connect(&addr).expect("reader connect");
    let mut writer = QueryClient::connect(&addr).expect("writer connect");
    let q = "range of f is faculty retrieve (f.name)";
    // Pin the reader's connection at the empty relation.
    let before = reader.execute_pinned(q).expect("pin");
    assert!(before.ok);
    let resp = writer
        .execute(r#"append to faculty (name = "Merrie", rank = "full")"#)
        .expect("append");
    assert!(resp.ok, "{}", resp.body);
    // Pinned requests keep serving the old snapshot...
    let pinned = reader.execute_pinned(q).expect("pinned read");
    assert_eq!(pinned.body, before.body, "pinned snapshot moved");
    // ...while a plain execute refreshes to the durable watermark.
    let fresh = reader.execute(q).expect("refreshing read");
    assert_ne!(fresh.body, before.body, "execute must see the commit");
    assert!(fresh.body.contains("Merrie"));
    server.shutdown();
    engine.shutdown();
}

#[test]
fn service_reports_errors_without_dropping_the_connection() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let mut client = QueryClient::connect(&addr).expect("connect");
    let bad = client.execute("retrieve (f.name)").expect("round trip");
    assert!(!bad.ok, "undeclared range variable must fail");
    assert!(!bad.body.is_empty(), "error responses carry a message");
    // The connection (and its session) survives the error.
    let good = client
        .execute(r#"append to faculty (name = "Ann", rank = "lecturer")"#)
        .expect("round trip after error");
    assert!(good.ok, "{}", good.body);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn shutdown_unblocks_connected_clients() {
    let (engine, server) = serve_fresh();
    let addr = server.addr().to_string();
    let mut client = QueryClient::connect(&addr).expect("connect");
    assert!(client.ping().expect("ping"));
    server.shutdown();
    // Further requests fail at the transport layer rather than hanging.
    let outcome = client.ping();
    assert!(
        outcome.is_err() || !outcome.unwrap(),
        "ping succeeded against a stopped server"
    );
    engine.shutdown();
}
